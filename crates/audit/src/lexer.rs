//! A minimal Rust lexer for lint purposes.
//!
//! The analyzer's rules are token-level pattern matches; the one thing
//! that makes them trustworthy is that they never fire on *text* — doc
//! comments, string literals, or char literals that merely mention a
//! forbidden name. [`lex`] walks a source file once and produces a
//! "code shadow": the same bytes with every comment and every literal
//! interior replaced by spaces, so line/column positions are preserved
//! while only genuine code tokens survive.
//!
//! Along the way it extracts **audit directives** from line comments:
//!
//! ```text
//! // audit: hotpath
//! // audit: allow(<rule>) -- <reason>
//! // audit: allow-file(<rule>) -- <reason>
//! ```
//!
//! A waiver without a `-- <reason>` tail is itself reported as a
//! malformed directive: the grammar makes the *why* mandatory.
//!
//! Handled literal syntax: line comments, nested block comments,
//! `"…"`, `r"…"`, `r#"…"#` (any hash depth), `b"…"`, `br#"…"#`,
//! `'c'` char literals (including escapes) vs. `'static` lifetimes.

/// One extracted `// audit: …` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based source line the directive comment sits on.
    pub line: u32,
    /// Parsed directive payload.
    pub kind: DirectiveKind,
}

/// The directive grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `// audit: hotpath` — the next `fn` (or the whole file when no
    /// `fn` follows nearby) must stay allocation-free.
    Hotpath,
    /// `// audit: allow(<rule>) -- <reason>` — waive violations of
    /// `rule` on this line or the line directly below.
    Allow {
        /// Rule id being waived (e.g. `panics`).
        rule: String,
        /// Mandatory human reason.
        reason: String,
    },
    /// `// audit: allow-file(<rule>) -- <reason>` — waive `rule` for
    /// the entire file.
    AllowFile {
        /// Rule id being waived.
        rule: String,
        /// Mandatory human reason.
        reason: String,
    },
    /// A comment that starts with `audit:` but does not parse; the
    /// scanner reports these so typos cannot silently disable a rule.
    Malformed {
        /// What the lexer saw after `audit:`.
        text: String,
    },
}

/// Result of lexing one source file.
#[derive(Debug, Clone)]
pub struct Lexed {
    /// The code shadow: identical byte length and line structure to the
    /// input, with comments and literal interiors blanked to spaces.
    pub code: String,
    /// Extracted audit directives, in source order.
    pub directives: Vec<Directive>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
    Char,
}

/// Lexes `src` into a code shadow plus extracted directives.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut code = String::with_capacity(src.len());
    let mut directives = Vec::new();
    let mut state = State::Code;
    let mut line: u32 = 1;
    let mut comment_start = 0usize; // byte offset of current line comment text
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            if state == State::LineComment {
                parse_comment(&src[comment_start..i], line, &mut directives);
                state = State::Code;
            }
            code.push('\n');
            line += 1;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    comment_start = i + 2;
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str { raw_hashes: None };
                    code.push('"');
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_is_ident(&code) {
                    // Possible raw/byte string prefix: r" r#" b" br" br#"
                    let mut j = i + 1;
                    if c == 'b' && bytes.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = j > i + 1 || c == 'r';
                    if bytes.get(j) == Some(&b'"') && (is_raw || c == 'b') {
                        for _ in i..=j {
                            code.push(' ');
                        }
                        code.pop();
                        code.push('"');
                        state = State::Str {
                            raw_hashes: if is_raw { Some(hashes) } else { None },
                        };
                        i = j + 1;
                    } else if c == 'b' && bytes.get(i + 1) == Some(&b'\'') {
                        code.push_str(" '");
                        state = State::Char;
                        i += 2;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal or lifetime?
                    if is_char_literal(bytes, i) {
                        state = State::Char;
                    }
                    code.push('\'');
                    i += 1;
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    code.push_str("  ");
                    i += 2;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str { raw_hashes: None } => {
                if c == '\\' && i + 1 < bytes.len() {
                    code.push_str("  ");
                    if bytes[i + 1] == b'\n' {
                        code.pop();
                        code.push('\n');
                        line += 1;
                    }
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str {
                raw_hashes: Some(h),
            } => {
                if c == '"' && closes_raw(bytes, i, h) {
                    code.push('"');
                    for _ in 0..h {
                        code.push(' ');
                    }
                    state = State::Code;
                    i += 1 + h as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' && i + 1 < bytes.len() {
                    code.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if state == State::LineComment {
        parse_comment(&src[comment_start..], line, &mut directives);
    }
    Lexed { code, directives }
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

fn closes_raw(bytes: &[u8], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| bytes.get(i + 1 + k) == Some(&b'#'))
}

/// `'x'`, `'\n'`, `'\''` are char literals; `'static`, `'_` are
/// lifetimes. Decided by lookahead from the opening quote at `i`.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(&c) if (c as char).is_alphanumeric() || c == b'_' => {
            // `'a'` is a char; `'a,` / `'a>` / `'a ` is a lifetime.
            bytes.get(i + 2) == Some(&b'\'')
        }
        Some(b'\'') => false, // `''` — malformed, treat as lifetime-ish
        Some(_) => true,      // `'(' `, `' '` etc. — char literal
        None => false,
    }
}

/// Parses one line-comment body for the directive grammar.
fn parse_comment(text: &str, line: u32, out: &mut Vec<Directive>) {
    // Tolerate doc comments (`/// audit:` is still a directive-shaped
    // string a human may have intended) and leading punctuation.
    let t = text.trim_start_matches(['/', '!']).trim();
    let Some(rest) = t.strip_prefix("audit:") else {
        return;
    };
    let rest = rest.trim();
    let kind = if rest == "hotpath"
        || rest
            .strip_prefix("hotpath")
            .is_some_and(|t| t.trim_start().starts_with("--"))
    {
        // `audit: hotpath` with an optional `-- note` tail.
        DirectiveKind::Hotpath
    } else if let Some(k) = parse_allow(rest, "allow-file(") {
        match k {
            Ok((rule, reason)) => DirectiveKind::AllowFile { rule, reason },
            Err(text) => DirectiveKind::Malformed { text },
        }
    } else if let Some(k) = parse_allow(rest, "allow(") {
        match k {
            Ok((rule, reason)) => DirectiveKind::Allow { rule, reason },
            Err(text) => DirectiveKind::Malformed { text },
        }
    } else {
        DirectiveKind::Malformed {
            text: rest.to_string(),
        }
    };
    out.push(Directive { line, kind });
}

/// Parses `allow(<rule>) -- <reason>` (with `prefix` selecting the
/// `allow(` / `allow-file(` head). `Err` carries the malformed text.
#[allow(clippy::type_complexity)]
fn parse_allow(rest: &str, prefix: &str) -> Option<Result<(String, String), String>> {
    let body = rest.strip_prefix(prefix)?;
    let Some(close) = body.find(')') else {
        return Some(Err(rest.to_string()));
    };
    let rule = body[..close].trim();
    let tail = body[close + 1..].trim();
    let Some(reason) = tail.strip_prefix("--") else {
        return Some(Err(rest.to_string()));
    };
    let reason = reason.trim();
    if rule.is_empty() || reason.is_empty() {
        return Some(Err(rest.to_string()));
    }
    Some(Ok((rule.to_string(), reason.to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src =
            "let x = \"Instant\"; // Instant in text\nlet y = 'I'; /* SystemTime */ call();\n";
        let lexed = lex(src);
        assert!(!lexed.code.contains("Instant"));
        assert!(!lexed.code.contains("SystemTime"));
        assert!(lexed.code.contains("let x = \""));
        assert!(lexed.code.contains("call();"));
        assert_eq!(lexed.code.lines().count(), src.lines().count());
    }

    #[test]
    fn raw_and_byte_strings_are_blanked() {
        let src = "a(r#\"vec![Instant]\"#); b(br\"unwrap()\"); c(b\"panic!\");";
        let code = lex(src).code;
        assert!(!code.contains("Instant"));
        assert!(!code.contains("unwrap"));
        assert!(!code.contains("panic"));
        assert!(code.contains("a("));
        assert!(code.contains("c("));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; g(x) }";
        let code = lex(src).code;
        assert!(code.contains("<'a>"));
        assert!(code.contains("&'a str"));
        assert!(!code.contains("'x'"));
        assert!(code.contains("g(x)"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a(); /* outer /* inner unwrap() */ still comment */ b();";
        let code = lex(src).code;
        assert!(code.contains("a();"));
        assert!(code.contains("b();"));
        assert!(!code.contains("unwrap"));
        assert!(!code.contains("still"));
    }

    #[test]
    fn directives_parse() {
        let src = "\n// audit: hotpath\nfn f() {}\nlet x = 1; // audit: allow(panics) -- test harness\n// audit: allow-file(cost) -- delegation\n// audit: allow(panics) missing reason\n";
        let d = lex(src).directives;
        assert_eq!(d.len(), 4);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].kind, DirectiveKind::Hotpath);
        assert_eq!(
            d[1].kind,
            DirectiveKind::Allow {
                rule: "panics".into(),
                reason: "test harness".into()
            }
        );
        assert_eq!(
            d[2].kind,
            DirectiveKind::AllowFile {
                rule: "cost".into(),
                reason: "delegation".into()
            }
        );
        assert!(matches!(d[3].kind, DirectiveKind::Malformed { .. }));
    }

    #[test]
    fn ordinary_comments_are_not_directives() {
        let src = "// the audit crate does X\n// audited by hand\nf();\n";
        assert!(lex(src).directives.is_empty());
    }
}
