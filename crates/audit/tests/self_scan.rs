//! The self-scan: `pi_audit` run over the workspace that ships it.
//!
//! This is the pin that makes the ratchet real — CI runs
//! `pi_audit --check`, but this test keeps the invariant inside
//! `cargo test` too, so a violation or a stale baseline fails the
//! ordinary test suite even where CI is not in the loop.

use pi_audit::{drift, find_workspace_root, scan_file, scan_workspace, Baseline, FileClass};

fn root() -> std::path::PathBuf {
    find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/audit")
}

#[test]
fn workspace_scan_matches_the_committed_baseline() {
    let root = root();
    let scan = scan_workspace(&root).expect("scan workspace");
    assert!(
        scan.files_scanned > 100,
        "walker found only {} files — member discovery broke",
        scan.files_scanned
    );

    let text = std::fs::read_to_string(root.join(pi_audit::BASELINE_FILE))
        .expect("audit_baseline.json at the workspace root");
    let baseline = Baseline::parse(&text).expect("parse baseline");
    let drifts = drift(&scan.counts, &baseline);
    assert!(
        drifts.is_empty(),
        "scan disagrees with audit_baseline.json — regression or stale \
         ratchet (run `cargo run -p pi_audit -- --write-baseline` after \
         a burn-down):\n{drifts:#?}"
    );
}

#[test]
fn every_non_panic_rule_is_at_zero() {
    // The panics debt is ratcheted; everything else is already clean
    // and must stay clean — the baseline has no allowance for it.
    let scan = scan_workspace(&root()).expect("scan workspace");
    for rule in ["determinism", "hotpath", "cost", "lints", "directive"] {
        let hits: Vec<String> = scan
            .violations
            .iter()
            .filter(|v| v.rule == rule)
            .map(|v| format!("{}:{}: {}", v.file, v.line, v.message))
            .collect();
        assert!(
            hits.is_empty(),
            "rule `{rule}` regressed:\n{}",
            hits.join("\n")
        );
    }
}

#[test]
fn an_injected_violation_is_detected() {
    // Sensitivity check: the same scanner that passes the tree above
    // must flag a violation appended to a real workspace file.
    let root = root();
    let path = root.join("crates/core/src/key.rs");
    let clean = std::fs::read_to_string(&path).expect("read pi_core source");
    let before = scan_file("pi_core", "crates/core/src/key.rs", FileClass::Lib, &clean).len();
    let injected = format!("{clean}\npub fn bad() -> u8 {{ None::<u8>.unwrap() }}\n");
    let after = scan_file(
        "pi_core",
        "crates/core/src/key.rs",
        FileClass::Lib,
        &injected,
    )
    .len();
    assert_eq!(after, before + 1, "injected `.unwrap()` went undetected");
}
