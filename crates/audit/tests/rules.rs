//! Fixture tests: each file under `tests/fixtures/` exercises one rule
//! family end-to-end through [`pi_audit::scan_file`]. The fixtures are
//! real `.rs` sources but live in a `fixtures/` directory, which the
//! workspace walker skips — so the self-scan never sees them.

use pi_audit::{scan_file, FileClass, Violation};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.rule).collect()
}

#[test]
fn determinism_flags_wall_clocks() {
    let v = scan_file(
        "fx",
        "crates/fx/src/clock.rs",
        FileClass::Lib,
        &fixture("determinism_clock.rs"),
    );
    // The `use` line names both Instant and SystemTime; the body names
    // Instant again.
    assert_eq!(rules_of(&v), ["determinism"; 3], "{v:?}");
    assert!(v[0].message.contains("Instant") || v[0].message.contains("SystemTime"));
}

#[test]
fn order_sensitive_basename_rejects_hashmap_outside_tests() {
    let src = fixture("order_map_engine.rs");
    let v = scan_file("fx", "crates/fx/src/engine.rs", FileClass::Lib, &src);
    // `use` + field type fire; the HashSet inside #[cfg(test)] must not.
    assert_eq!(rules_of(&v), ["determinism"; 2], "{v:?}");
    assert!(v.iter().all(|v| v.message.contains("HashMap")), "{v:?}");

    // Same content under a non-order-sensitive basename: clean.
    let v = scan_file("fx", "crates/fx/src/builder.rs", FileClass::Lib, &src);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn hotpath_region_rejects_allocation_but_cold_code_may_allocate() {
    let v = scan_file(
        "fx",
        "crates/fx/src/hot.rs",
        FileClass::Lib,
        &fixture("hotpath_alloc.rs"),
    );
    assert_eq!(rules_of(&v), ["hotpath"], "{v:?}");
    assert!(v[0].message.contains(".to_vec("));
    // Only the annotated fn fires — the identical allocation in
    // `cold_setup` is fine.
    assert_eq!(v.len(), 1);
}

#[test]
fn panic_surface_fires_in_lib_but_not_bins_or_tests() {
    let src = fixture("panics_lib.rs");
    let v = scan_file("fx", "crates/fx/src/panics.rs", FileClass::Lib, &src);
    assert_eq!(rules_of(&v), ["panics"; 3], "{v:?}");
    // The doc comment and the string literal mentioning `.unwrap()`
    // must not add a 4th hit — check the flagged lines are code lines.
    let lines: Vec<u32> = v.iter().map(|v| v.line).collect();
    assert_eq!(lines, [7, 11, 16], "{v:?}");

    for class in [FileClass::Bin, FileClass::Test, FileClass::Bench] {
        let v = scan_file("fx", "crates/fx/src/bin/x.rs", class, &src);
        assert!(v.is_empty(), "{class:?} should be exempt: {v:?}");
    }
}

#[test]
fn backend_impl_without_cost_evidence_is_flagged() {
    let v = scan_file(
        "fx",
        "crates/fx/src/free.rs",
        FileClass::Lib,
        &fixture("cost_free_backend.rs"),
    );
    assert_eq!(rules_of(&v), ["cost"], "{v:?}");

    // Adding any CostModel evidence clears it.
    let charged = format!(
        "{}\nfn price(&self) -> u64 {{ self.cost.packet_cycles }}\n",
        fixture("cost_free_backend.rs")
    );
    let v = scan_file("fx", "crates/fx/src/free.rs", FileClass::Lib, &charged);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn reasoned_waivers_silence_violations() {
    let v = scan_file(
        "fx",
        "crates/fx/src/waived.rs",
        FileClass::Lib,
        &fixture("waived_clean.rs"),
    );
    assert!(v.is_empty(), "waived fixture must scan clean: {v:?}");
}

#[test]
fn bad_waivers_are_directive_violations() {
    let v = scan_file(
        "fx",
        "crates/fx/src/bad.rs",
        FileClass::Lib,
        &fixture("bad_waivers.rs"),
    );
    assert_eq!(rules_of(&v), ["directive"; 3], "{v:?}");
    let messages: String = v.iter().map(|v| v.message.as_str()).collect();
    assert!(messages.contains("unused waiver"), "{v:?}");
    assert!(messages.contains("malformed"), "{v:?}");
    assert!(messages.contains("unknown rule"), "{v:?}");
}
