//! Fixture: allocation inside an annotated hot-path region, plus an
//! identical allocation OUTSIDE the region that must not fire.

// audit: hotpath
pub fn process_batch(keys: &[u32]) -> usize {
    let copy = keys.to_vec();
    copy.len()
}

pub fn cold_setup(keys: &[u32]) -> Vec<u32> {
    keys.to_vec()
}
