//! Fixture: the directive rule — an unused waiver, a reasonless
//! waiver, and a waiver naming an unknown rule.

// audit: allow(panics) -- nothing on this line or the next panics
pub fn clean() -> u8 {
    1
}

// audit: allow(determinism)
pub fn reasonless() -> u8 {
    2
}

// audit: allow(telemetry) -- no such rule
pub fn unknown_rule() -> u8 {
    3
}
