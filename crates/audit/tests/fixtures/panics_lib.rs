//! Fixture: panic surface in library code — one `.unwrap()`, one
//! `.expect(`, one `panic!`. The string literal and the doc comment
//! mentioning unwrap() must NOT fire.

/// Never call .unwrap() in docs — this line is comment text.
pub fn first(v: &[u8]) -> u8 {
    *v.first().unwrap()
}

pub fn must(v: Option<u8>) -> u8 {
    v.expect("present")
}

pub fn boom(msg: &str) -> ! {
    let _decoy = "call .unwrap() here";
    panic!("{msg}")
}
