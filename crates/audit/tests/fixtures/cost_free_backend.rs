//! Fixture: a `DataplaneBackend` impl with no CostModel evidence —
//! its packet/control ops look free.

impl DataplaneBackend for FreeSwitch {
    fn process_batch(&mut self) -> usize {
        0
    }
}
