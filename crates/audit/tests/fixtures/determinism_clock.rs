//! Fixture: wall-clock use in library code (2 determinism hits).

use std::time::{Instant, SystemTime};

pub fn stamp() -> u64 {
    let _ = Instant::now();
    0
}
