//! Fixture: every violation carries a reasoned waiver — scan is clean.

// audit: allow-file(determinism) -- fixture demonstrates a file-level waiver
use std::time::Instant;

pub fn timed() -> Instant {
    // audit: allow(panics) -- fixture demonstrates a next-line waiver
    checked().expect("fixture")
}

pub fn inline() -> u8 {
    Some(1u8).unwrap() // audit: allow(panics) -- fixture demonstrates a same-line waiver
}

fn checked() -> Option<Instant> {
    Some(Instant::now())
}
