//! Fixture: `HashMap` in an order-sensitive module (scanned under the
//! rel_path `crates/x/src/engine.rs`). The `#[cfg(test)]` block at the
//! bottom must NOT count.

use std::collections::HashMap;

pub struct Engine {
    routes: HashMap<u32, usize>,
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    fn exempt() {
        let _ = HashSet::<u8>::new();
    }
}
