//! The cluster engine: builder, worker pool and the epoch loop.
//!
//! Execution model (rustasim-style conservative synchronization,
//! specialised to a constant one-tick fabric latency):
//!
//! * every host shard is stepped once per epoch (= one simulation
//!   tick), workers own disjoint shard sets and step them in shard-id
//!   order;
//! * cross-host packets and delivery receipts produced during epoch
//!   `t` are exchanged through bounded channels and delivered at the
//!   start of epoch `t + 1`;
//! * the coordinator merges per-destination traffic **in sending-shard
//!   order**, so the bytes a shard observes never depend on worker
//!   count or thread scheduling — the property the determinism test
//!   pins.

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, SyncSender};
use std::thread;

use pi_classifier::FlowTable;
use pi_cms::ControlPlaneProgram;
use pi_core::{Port, SimTime};
use pi_datapath::{CostModel, DpConfig};
use pi_detect::DefenseController;
use pi_fault::{FaultSchedule, ReliabilityConfig, ReliableControlPlane};
use pi_sim::NodeCell;
use pi_traffic::TrafficSource;

use crate::config::FleetConfig;
use crate::report::FleetReport;
use crate::shard::{FleetSlot, HostCmd, HostShard, Inbound, ShardOutput, TickCtx};

/// A pod migration scheduled at build time.
#[derive(Debug, Clone)]
struct MigrationSpec {
    at: SimTime,
    ip: u32,
    to_host: usize,
}

/// Builder for a [`FleetSim`].
pub struct FleetBuilder {
    cfg: FleetConfig,
    cost: CostModel,
    hosts: Vec<DpConfig>,
    next_vport: Vec<u32>,
    pods: Vec<(usize, u32, u32)>, // (host, ip, vport)
    acls: Vec<(u32, FlowTable)>,
    sources: Vec<(usize, Box<dyn TrafficSource + Send>)>,
    migrations: Vec<MigrationSpec>,
    defenses: Vec<(usize, DefenseController)>,
    control_planes: Vec<(usize, ControlPlaneProgram)>,
    faults: Vec<(usize, FaultSchedule)>,
    reliable_controls: Vec<(usize, ControlPlaneProgram, ReliabilityConfig)>,
}

impl FleetBuilder {
    /// Starts a build with global parameters and the default cost model.
    pub fn new(cfg: FleetConfig) -> Self {
        FleetBuilder {
            cfg,
            cost: CostModel::default(),
            hosts: Vec::new(),
            next_vport: Vec::new(),
            pods: Vec::new(),
            acls: Vec::new(),
            sources: Vec::new(),
            migrations: Vec::new(),
            defenses: Vec::new(),
            control_planes: Vec::new(),
            faults: Vec::new(),
            reliable_controls: Vec::new(),
        }
    }

    /// Overrides the cycle cost model for every switch.
    #[must_use]
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Adds a host with its datapath configuration; returns the host
    /// index (== shard id).
    pub fn add_host(&mut self, dp: DpConfig) -> usize {
        self.hosts.push(dp);
        self.next_vport.push(1);
        self.hosts.len() - 1
    }

    /// Attaches a pod with IP `ip` (host order) to `host`, allocating
    /// its vport; returns the vport.
    pub fn add_pod(&mut self, host: usize, ip: u32) -> u32 {
        let vport = self.next_vport[host];
        self.next_vport[host] += 1;
        self.add_pod_at(host, ip, vport);
        vport
    }

    /// Attaches a pod with a caller-chosen vport (used when the CMS has
    /// already allocated it; see [`crate::ClusterBuilder`]).
    pub fn add_pod_at(&mut self, host: usize, ip: u32, vport: u32) {
        self.next_vport[host] = self.next_vport[host].max(vport + 1);
        self.pods.push((host, ip, vport));
    }

    /// Installs an ingress ACL at the pod with IP `ip` (on its home
    /// switch; reinstalled automatically if the pod later migrates).
    pub fn install_acl(&mut self, ip: u32, table: FlowTable) {
        self.acls.push((ip, table));
    }

    /// Registers a traffic source injecting at `host`; returns its
    /// global source index (order of registration).
    pub fn add_source(&mut self, host: usize, source: Box<dyn TrafficSource + Send>) -> usize {
        self.sources.push((host, source));
        self.sources.len() - 1
    }

    /// Schedules a live migration: at simulated time `at`, the pod at
    /// `ip` detaches from its current host and re-attaches on
    /// `to_host` (with its ACL, if any). Traffic in flight is tunnelled
    /// through the old host's uplink during the switchover.
    pub fn schedule_migration(&mut self, at: SimTime, ip: u32, to_host: usize) {
        self.migrations.push(MigrationSpec { at, ip, to_host });
    }

    /// Attaches a shard-local closed-loop defense controller to `host`,
    /// run every [`pi_sim::SimConfig::defense_interval`]. Controllers
    /// are strictly shard-local state, so worker-count determinism is
    /// preserved.
    pub fn attach_defense(&mut self, host: usize, controller: DefenseController) {
        self.defenses.push((host, controller));
    }

    /// Attaches a timed control-plane program to `host`: its scheduled
    /// policy updates land on the epoch grid (tick boundaries), each
    /// charged against the host's cycle budget. The driver is strictly
    /// shard-local state, so worker-count determinism is preserved —
    /// including the policy-update timelines in the report. Multiple
    /// programs for one host are merged.
    pub fn attach_control_plane(&mut self, host: usize, program: ControlPlaneProgram) {
        self.control_planes.push((host, program));
    }

    /// Attaches a fault program to `host`: crash/restart events, host
    /// stalls and the CMS→switch channel fault model. Faults are
    /// strictly shard-local state (compiled cursors owned by the
    /// node), so worker-count determinism is preserved even under
    /// crashes and reordered control channels. Multiple schedules for
    /// one host merge.
    pub fn attach_faults(&mut self, host: usize, schedule: FaultSchedule) {
        self.faults.push((host, schedule));
    }

    /// Attaches an at-least-once control plane to `host`: `program`'s
    /// updates travel through the host's faulty channel (from its
    /// [`FaultSchedule`], perfect if none) with acks, retry/backoff
    /// and periodic reconciliation per `cfg`. Multiple programs for
    /// one host merge; the last `cfg` wins.
    pub fn attach_reliable_control_plane(
        &mut self,
        host: usize,
        program: ControlPlaneProgram,
        cfg: ReliabilityConfig,
    ) {
        self.reliable_controls.push((host, program, cfg));
    }

    /// Finalises the topology.
    pub fn build(self) -> FleetSim {
        assert!(!self.hosts.is_empty(), "need at least one host");
        let n = self.hosts.len();
        let cfg = self.cfg;

        let mut routes: HashMap<u32, usize> = HashMap::new();
        for &(host, ip, _) in &self.pods {
            assert!(
                routes.insert(ip, host).is_none(),
                "pod IPs must be unique across the fleet"
            );
        }

        let mut nodes: Vec<NodeCell<usize>> = self
            .hosts
            .into_iter()
            .map(|dp| NodeCell::new(dp, self.cost))
            .collect();
        for &(host, ip, vport) in &self.pods {
            for (i, node) in nodes.iter_mut().enumerate() {
                let raw = if i == host { vport } else { Port::Uplink.raw() };
                node.backend_mut().attach_pod(ip, raw);
            }
        }
        let mut acl_map: HashMap<u32, FlowTable> = HashMap::new();
        for (ip, table) in self.acls {
            let host = *routes.get(&ip).expect("ACL target pod must be attached");
            let ok = nodes[host].backend_mut().install_acl(ip, table.clone());
            assert!(ok, "ACL install must succeed on the home switch");
            acl_map.insert(ip, table);
        }

        for (host, controller) in self.defenses {
            nodes[host].attach_defense(controller);
        }
        let mut programs: HashMap<usize, ControlPlaneProgram> = HashMap::new();
        for (host, program) in self.control_planes {
            programs.entry(host).or_default().merge(program);
        }
        for (host, program) in programs {
            nodes[host].attach_control_plane(program.compile());
        }
        let mut fault_schedules: HashMap<usize, FaultSchedule> = HashMap::new();
        for (host, schedule) in self.faults {
            fault_schedules.entry(host).or_default().merge(schedule);
        }
        let mut reliable: HashMap<usize, (ControlPlaneProgram, ReliabilityConfig)> = HashMap::new();
        for (host, program, rcfg) in self.reliable_controls {
            let entry = reliable.entry(host).or_default();
            entry.0.merge(program);
            entry.1 = rcfg;
        }
        for (host, (program, rcfg)) in reliable {
            // The reliable layer sends through the host's faulty
            // channel, if its schedule models one.
            let channel = fault_schedules.get(&host).and_then(|s| s.channel_config());
            nodes[host]
                .attach_reliable_control_plane(ReliableControlPlane::new(program, rcfg, channel));
        }
        for (host, schedule) in fault_schedules {
            nodes[host].attach_faults(schedule.compile());
        }

        let source_home: Vec<usize> = self.sources.iter().map(|(h, _)| *h).collect();
        let mut per_host_slots: Vec<Vec<FleetSlot>> = (0..n).map(|_| Vec::new()).collect();
        for (global, (host, source)) in self.sources.into_iter().enumerate() {
            per_host_slots[host].push(FleetSlot::new(global, source));
        }

        let shards: Vec<HostShard> = nodes
            .into_iter()
            .zip(per_host_slots)
            .enumerate()
            .map(|(id, (node, slots))| {
                HostShard::new(id, node, routes.clone(), source_home.clone(), slots)
            })
            .collect();

        // Resolve migrations into per-tick command batches.
        let tick_ns = cfg.sim.tick.as_nanos();
        let mut next_vport = self.next_vport;
        let mut location = routes.clone();
        let mut migrations = self.migrations;
        migrations.sort_by_key(|m| m.at);
        let mut commands: Vec<(u64, usize, HostCmd)> = Vec::new();
        for m in migrations {
            let tick = m.at.as_nanos() / tick_ns;
            let from = *location.get(&m.ip).expect("migrating pod must be attached");
            if from == m.to_host {
                continue;
            }
            let vport = next_vport[m.to_host];
            next_vport[m.to_host] += 1;
            for shard in 0..n {
                commands.push((
                    tick,
                    shard,
                    HostCmd::Route {
                        ip: m.ip,
                        shard: m.to_host,
                    },
                ));
            }
            commands.push((tick, from, HostCmd::DetachToUplink { ip: m.ip }));
            commands.push((
                tick,
                m.to_host,
                HostCmd::AttachLocal {
                    ip: m.ip,
                    vport,
                    acl: acl_map.get(&m.ip).cloned(),
                },
            ));
            location.insert(m.ip, m.to_host);
        }

        FleetSim {
            cfg,
            shards,
            commands,
        }
    }
}

/// A runnable cluster simulation.
pub struct FleetSim {
    cfg: FleetConfig,
    shards: Vec<HostShard>,
    /// (tick, shard, command), in schedule order.
    commands: Vec<(u64, usize, HostCmd)>,
}

enum ToWorker {
    Tick {
        tick: u64,
        /// (shard, inbound, commands) for each shard this worker owns.
        batches: Vec<(usize, Inbound, Vec<HostCmd>)>,
    },
    Finish,
}

enum FromWorker {
    Ticked { outputs: Vec<(usize, ShardOutput)> },
    Done { shards: Vec<HostShard> },
}

fn worker_loop(
    mut shards: Vec<HostShard>,
    ctx: TickCtx,
    tick_ns: u64,
    rx: Receiver<ToWorker>,
    tx: SyncSender<FromWorker>,
) {
    loop {
        match rx.recv().expect("coordinator hung up mid-run") {
            ToWorker::Tick { tick, batches } => {
                let now = SimTime::from_nanos(tick * tick_ns);
                let next = now + SimTime::from_nanos(tick_ns);
                let mut outputs = Vec::with_capacity(batches.len());
                for (shard_id, inbound, cmds) in batches {
                    let shard = shards
                        .iter_mut()
                        .find(|s| s.id == shard_id)
                        .expect("worker owns the shard it is asked to step");
                    outputs.push((shard_id, shard.tick(tick, now, next, &ctx, inbound, &cmds)));
                }
                tx.send(FromWorker::Ticked { outputs })
                    .expect("coordinator hung up mid-run");
            }
            ToWorker::Finish => {
                tx.send(FromWorker::Done {
                    shards: std::mem::take(&mut shards),
                })
                .expect("coordinator hung up at finish");
                return;
            }
        }
    }
}

impl FleetSim {
    /// Number of host shards.
    pub fn host_count(&self) -> usize {
        self.shards.len()
    }

    /// Runs to completion and reports.
    pub fn run(self) -> FleetReport {
        let FleetSim {
            cfg,
            shards,
            commands,
        } = self;
        let n = shards.len();
        let workers = cfg.effective_workers().min(n.max(1));
        let sim = cfg.sim;
        let ctx = TickCtx {
            shards: n,
            cycles_per_tick: sim.cycles_per_tick(),
            link_bytes_per_tick: sim.link_bytes_per_tick(),
            queue_capacity: sim.queue_capacity,
            sample_every_ticks: (sim.sample_interval.as_nanos() / sim.tick.as_nanos()).max(1),
            window_secs: sim.sample_interval.as_secs_f64(),
            cpu_cycles_per_sec: sim.cpu_cycles_per_sec,
            defense_every_ticks: sim.defense_every_ticks(),
        };
        let tick_ns = sim.tick.as_nanos();
        let ticks = sim.tick_count();

        // Partition shards round-robin over workers; remember the owner
        // of each shard id.
        let owner: Vec<usize> = (0..n).map(|i| i % workers).collect();
        let mut parts: Vec<Vec<HostShard>> = (0..workers).map(|_| Vec::new()).collect();
        for shard in shards {
            parts[shard.id % workers].push(shard);
        }

        // Bounded channels: one in-flight epoch per worker keeps the
        // pipeline tight without unbounded buffering.
        let mut to_workers: Vec<SyncSender<ToWorker>> = Vec::with_capacity(workers);
        let mut from_workers: Vec<Receiver<FromWorker>> = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for part in parts {
            let (cmd_tx, cmd_rx) = std::sync::mpsc::sync_channel::<ToWorker>(1);
            let (res_tx, res_rx) = std::sync::mpsc::sync_channel::<FromWorker>(1);
            to_workers.push(cmd_tx);
            from_workers.push(res_rx);
            handles.push(thread::spawn(move || {
                worker_loop(part, ctx, tick_ns, cmd_rx, res_tx)
            }));
        }

        let mut inbounds: Vec<Inbound> = (0..n).map(|_| Inbound::default()).collect();
        let mut cmd_cursor = 0usize;
        for tick in 0..ticks {
            // Commands scheduled for this epoch, already in shard order
            // within the tick.
            let mut tick_cmds: Vec<Vec<HostCmd>> = (0..n).map(|_| Vec::new()).collect();
            while cmd_cursor < commands.len() && commands[cmd_cursor].0 <= tick {
                let (_, shard, cmd) = commands[cmd_cursor].clone();
                tick_cmds[shard].push(cmd);
                cmd_cursor += 1;
            }

            // Dispatch: hand every worker its shards' inbound + cmds.
            let mut batches: Vec<Vec<(usize, Inbound, Vec<HostCmd>)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (shard_id, inbound) in inbounds.drain(..).enumerate() {
                batches[owner[shard_id]].push((
                    shard_id,
                    inbound,
                    std::mem::take(&mut tick_cmds[shard_id]),
                ));
            }
            for (w, batch) in batches.into_iter().enumerate() {
                to_workers[w]
                    .send(ToWorker::Tick {
                        tick,
                        batches: batch,
                    })
                    .expect("worker died mid-run");
            }

            // Barrier: collect every shard's output, then merge for the
            // next epoch in sending-shard order.
            let mut outputs: Vec<Option<ShardOutput>> = (0..n).map(|_| None).collect();
            for rx in &from_workers {
                match rx.recv().expect("worker died mid-run") {
                    FromWorker::Ticked { outputs: outs } => {
                        for (shard_id, out) in outs {
                            outputs[shard_id] = Some(out);
                        }
                    }
                    FromWorker::Done { .. } => unreachable!("workers only finish on request"),
                }
            }
            inbounds = (0..n).map(|_| Inbound::default()).collect();
            for output in outputs.into_iter().map(|o| o.expect("every shard stepped")) {
                for (dst, pkts) in output.packets.into_iter().enumerate() {
                    inbounds[dst].packets.extend(pkts);
                }
                for (home, receipts) in output.receipts.into_iter().enumerate() {
                    inbounds[home].receipts.extend(receipts);
                }
            }
        }

        // Tear down and collect the shards back in id order.
        for tx in &to_workers {
            tx.send(ToWorker::Finish).expect("worker died at finish");
        }
        let mut final_shards: Vec<Option<HostShard>> = (0..n).map(|_| None).collect();
        for rx in &from_workers {
            match rx.recv().expect("worker died at finish") {
                FromWorker::Done { shards } => {
                    for s in shards {
                        let id = s.id;
                        final_shards[id] = Some(s);
                    }
                }
                FromWorker::Ticked { .. } => unreachable!("no ticks outstanding at finish"),
            }
        }
        for h in handles {
            h.join().expect("worker panicked");
        }

        FleetReport::assemble(
            workers,
            sim.tick,
            final_shards
                .into_iter()
                .map(|s| s.expect("all shards returned"))
                .collect(),
        )
    }
}
