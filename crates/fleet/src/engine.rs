//! The cluster engine: builder, worker pool and the event loop.
//!
//! Execution model (conservative parallel discrete-event simulation,
//! specialised to a constant one-tick fabric latency):
//!
//! * each worker owns a disjoint shard set and merges that set's event
//!   sources — pending cross-host deliveries, topology commands,
//!   per-shard wake deadlines ([`HostShard::next_wake`]) and the
//!   global sample grid — into one monotonic tick iterator; shards
//!   with no event at a tick are skipped entirely, which is where the
//!   idle-heavy speedup comes from;
//! * cross-host packets and delivery receipts produced during tick
//!   `t` are exchanged through bounded channels and delivered at the
//!   start of tick `t + 1`;
//! * workers synchronise by bounded lookahead instead of a global
//!   epoch barrier: every flush to a peer carries the promise "I will
//!   deliver nothing at ticks ≤ `safe`", a worker executes tick `e`
//!   only once every peer has promised `safe ≥ e`, and a flush with no
//!   items is exactly a CMB null message. Because a worker that has
//!   executed through its horizon `h` can always promise `h + 1`
//!   (its next execution is at least `h + 1`, so its next emission
//!   lands at `h + 2` at the earliest), every exchange advances the
//!   fleet and the protocol cannot deadlock — even when a shard
//!   sends no traffic at all;
//! * each shard merges per-destination traffic **in sending-shard
//!   order** at the tick it consumes it, so the bytes a shard observes
//!   never depend on worker count or thread scheduling — the property
//!   the determinism tests pin. The tick-stepped engine
//!   ([`pi_sim::SimConfig::event_driven`] = false) keeps the original
//!   one-tick-per-epoch barrier loop as the equivalence reference.

use std::cmp::Reverse;
// audit: allow(determinism) -- HashMap backs lookup-only tables here; every decl below is individually waived (never iterated) or uses the ordered BTreeMap
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::mpsc::{Receiver, SyncSender};
use std::thread;

use pi_classifier::FlowTable;
use pi_cms::ControlPlaneProgram;
use pi_core::{Port, SimTime};
use pi_datapath::{CostModel, DpConfig};
use pi_detect::DefenseController;
use pi_fault::{FaultSchedule, ReliabilityConfig, ReliableControlPlane};
use pi_sim::{NodeCell, NodePacket};
use pi_trace::{CauseId, TraceConfig, TraceEvent, TraceEventKind, Tracer};
use pi_traffic::TrafficSource;

use crate::config::FleetConfig;
use crate::report::{EngineProfile, FleetReport, FLUSH_LOG_CAP};
use crate::shard::{FleetSlot, HostCmd, HostShard, Inbound, Receipt, ShardOutput, TickCtx};

/// A pod migration scheduled at build time.
#[derive(Debug, Clone)]
struct MigrationSpec {
    at: SimTime,
    ip: u32,
    to_host: usize,
}

/// Builder for a [`FleetSim`].
pub struct FleetBuilder {
    cfg: FleetConfig,
    cost: CostModel,
    hosts: Vec<DpConfig>,
    next_vport: Vec<u32>,
    pods: Vec<(usize, u32, u32)>, // (host, ip, vport)
    acls: Vec<(u32, FlowTable)>,
    sources: Vec<(usize, Box<dyn TrafficSource + Send>)>,
    migrations: Vec<MigrationSpec>,
    defenses: Vec<(usize, DefenseController)>,
    control_planes: Vec<(usize, ControlPlaneProgram)>,
    faults: Vec<(usize, FaultSchedule)>,
    reliable_controls: Vec<(usize, ControlPlaneProgram, ReliabilityConfig)>,
}

impl FleetBuilder {
    /// Starts a build with global parameters and the default cost model.
    pub fn new(cfg: FleetConfig) -> Self {
        FleetBuilder {
            cfg,
            cost: CostModel::default(),
            hosts: Vec::new(),
            next_vport: Vec::new(),
            pods: Vec::new(),
            acls: Vec::new(),
            sources: Vec::new(),
            migrations: Vec::new(),
            defenses: Vec::new(),
            control_planes: Vec::new(),
            faults: Vec::new(),
            reliable_controls: Vec::new(),
        }
    }

    /// Overrides the cycle cost model for every switch.
    #[must_use]
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Adds a host with its datapath configuration; returns the host
    /// index (== shard id).
    pub fn add_host(&mut self, dp: DpConfig) -> usize {
        self.hosts.push(dp);
        self.next_vport.push(1);
        self.hosts.len() - 1
    }

    /// Attaches a pod with IP `ip` (host order) to `host`, allocating
    /// its vport; returns the vport.
    pub fn add_pod(&mut self, host: usize, ip: u32) -> u32 {
        let vport = self.next_vport[host];
        self.next_vport[host] += 1;
        self.add_pod_at(host, ip, vport);
        vport
    }

    /// Attaches a pod with a caller-chosen vport (used when the CMS has
    /// already allocated it; see [`crate::ClusterBuilder`]).
    pub fn add_pod_at(&mut self, host: usize, ip: u32, vport: u32) {
        self.next_vport[host] = self.next_vport[host].max(vport + 1);
        self.pods.push((host, ip, vport));
    }

    /// Installs an ingress ACL at the pod with IP `ip` (on its home
    /// switch; reinstalled automatically if the pod later migrates).
    pub fn install_acl(&mut self, ip: u32, table: FlowTable) {
        self.acls.push((ip, table));
    }

    /// Registers a traffic source injecting at `host`; returns its
    /// global source index (order of registration).
    pub fn add_source(&mut self, host: usize, source: Box<dyn TrafficSource + Send>) -> usize {
        self.sources.push((host, source));
        self.sources.len() - 1
    }

    /// Schedules a live migration: at simulated time `at`, the pod at
    /// `ip` detaches from its current host and re-attaches on
    /// `to_host` (with its ACL, if any). Traffic in flight is tunnelled
    /// through the old host's uplink during the switchover.
    pub fn schedule_migration(&mut self, at: SimTime, ip: u32, to_host: usize) {
        self.migrations.push(MigrationSpec { at, ip, to_host });
    }

    /// Attaches a shard-local closed-loop defense controller to `host`,
    /// run every [`pi_sim::SimConfig::defense_interval`]. Controllers
    /// are strictly shard-local state, so worker-count determinism is
    /// preserved.
    pub fn attach_defense(&mut self, host: usize, controller: DefenseController) {
        self.defenses.push((host, controller));
    }

    /// Attaches a timed control-plane program to `host`: its scheduled
    /// policy updates land on the epoch grid (tick boundaries), each
    /// charged against the host's cycle budget. The driver is strictly
    /// shard-local state, so worker-count determinism is preserved —
    /// including the policy-update timelines in the report. Multiple
    /// programs for one host are merged.
    pub fn attach_control_plane(&mut self, host: usize, program: ControlPlaneProgram) {
        self.control_planes.push((host, program));
    }

    /// Attaches a fault program to `host`: crash/restart events, host
    /// stalls and the CMS→switch channel fault model. Faults are
    /// strictly shard-local state (compiled cursors owned by the
    /// node), so worker-count determinism is preserved even under
    /// crashes and reordered control channels. Multiple schedules for
    /// one host merge.
    pub fn attach_faults(&mut self, host: usize, schedule: FaultSchedule) {
        self.faults.push((host, schedule));
    }

    /// Attaches an at-least-once control plane to `host`: `program`'s
    /// updates travel through the host's faulty channel (from its
    /// [`FaultSchedule`], perfect if none) with acks, retry/backoff
    /// and periodic reconciliation per `cfg`. Multiple programs for
    /// one host merge; the last `cfg` wins.
    pub fn attach_reliable_control_plane(
        &mut self,
        host: usize,
        program: ControlPlaneProgram,
        cfg: ReliabilityConfig,
    ) {
        self.reliable_controls.push((host, program, cfg));
    }

    /// Finalises the topology.
    pub fn build(self) -> FleetSim {
        assert!(!self.hosts.is_empty(), "need at least one host");
        let n = self.hosts.len();
        let cfg = self.cfg;

        // audit: allow(determinism) -- per-packet ip→shard lookup on the hot path; only ever get()/clone(), never iterated
        let mut routes: HashMap<u32, usize> = HashMap::new();
        for &(host, ip, _) in &self.pods {
            assert!(
                routes.insert(ip, host).is_none(),
                "pod IPs must be unique across the fleet"
            );
        }

        let mut nodes: Vec<NodeCell<usize>> = self
            .hosts
            .into_iter()
            .map(|dp| NodeCell::new(dp, self.cost))
            .collect();
        for &(host, ip, vport) in &self.pods {
            for (i, node) in nodes.iter_mut().enumerate() {
                let raw = if i == host { vport } else { Port::Uplink.raw() };
                node.backend_mut().attach_pod(ip, raw);
            }
        }
        let mut acl_map: BTreeMap<u32, FlowTable> = BTreeMap::new();
        for (ip, table) in self.acls {
            let host = *routes.get(&ip).expect("ACL target pod must be attached");
            let ok = nodes[host].backend_mut().install_acl(ip, table.clone());
            assert!(ok, "ACL install must succeed on the home switch");
            acl_map.insert(ip, table);
        }

        for (host, controller) in self.defenses {
            nodes[host].attach_defense(controller);
        }
        let mut programs: BTreeMap<usize, ControlPlaneProgram> = BTreeMap::new();
        for (host, program) in self.control_planes {
            programs.entry(host).or_default().merge(program);
        }
        for (host, program) in programs {
            nodes[host].attach_control_plane(program.compile());
        }
        let mut fault_schedules: BTreeMap<usize, FaultSchedule> = BTreeMap::new();
        for (host, schedule) in self.faults {
            fault_schedules.entry(host).or_default().merge(schedule);
        }
        let mut reliable: BTreeMap<usize, (ControlPlaneProgram, ReliabilityConfig)> =
            BTreeMap::new();
        for (host, program, rcfg) in self.reliable_controls {
            let entry = reliable.entry(host).or_default();
            entry.0.merge(program);
            entry.1 = rcfg;
        }
        for (host, (program, rcfg)) in reliable {
            // The reliable layer sends through the host's faulty
            // channel, if its schedule models one.
            let channel = fault_schedules.get(&host).and_then(|s| s.channel_config());
            nodes[host]
                .attach_reliable_control_plane(ReliableControlPlane::new(program, rcfg, channel));
        }
        for (host, schedule) in fault_schedules {
            nodes[host].attach_faults(schedule.compile());
        }
        if cfg.sim.trace.enabled {
            for (host, node) in nodes.iter_mut().enumerate() {
                node.set_tracer(Tracer::for_host(cfg.sim.trace, host as u32));
            }
        }

        let source_home: Vec<usize> = self.sources.iter().map(|(h, _)| *h).collect();
        let mut per_host_slots: Vec<Vec<FleetSlot>> = (0..n).map(|_| Vec::new()).collect();
        for (global, (host, source)) in self.sources.into_iter().enumerate() {
            per_host_slots[host].push(FleetSlot::new(global, source));
        }

        let shards: Vec<HostShard> = nodes
            .into_iter()
            .zip(per_host_slots)
            .enumerate()
            .map(|(id, (node, slots))| {
                HostShard::new(id, node, routes.clone(), source_home.clone(), slots)
            })
            .collect();

        // Resolve migrations into per-tick command batches.
        let tick_ns = cfg.sim.tick.as_nanos();
        let mut next_vport = self.next_vport;
        let mut location = routes.clone();
        let mut migrations = self.migrations;
        migrations.sort_by_key(|m| m.at);
        let mut commands: Vec<(u64, usize, HostCmd)> = Vec::new();
        for m in migrations {
            let tick = m.at.as_nanos() / tick_ns;
            let from = *location.get(&m.ip).expect("migrating pod must be attached");
            if from == m.to_host {
                continue;
            }
            let vport = next_vport[m.to_host];
            next_vport[m.to_host] += 1;
            for shard in 0..n {
                commands.push((
                    tick,
                    shard,
                    HostCmd::Route {
                        ip: m.ip,
                        shard: m.to_host,
                    },
                ));
            }
            commands.push((tick, from, HostCmd::DetachToUplink { ip: m.ip }));
            commands.push((
                tick,
                m.to_host,
                HostCmd::AttachLocal {
                    ip: m.ip,
                    vport,
                    acl: acl_map.get(&m.ip).cloned(),
                },
            ));
            location.insert(m.ip, m.to_host);
        }

        FleetSim {
            cfg,
            shards,
            commands,
        }
    }
}

/// A runnable cluster simulation.
pub struct FleetSim {
    cfg: FleetConfig,
    shards: Vec<HostShard>,
    /// (tick, shard, command), in schedule order.
    commands: Vec<(u64, usize, HostCmd)>,
}

enum ToWorker {
    Tick {
        tick: u64,
        /// (shard, inbound, commands) for each shard this worker owns.
        batches: Vec<(usize, Inbound, Vec<HostCmd>)>,
    },
    Finish,
}

/// One cross-worker delivery: `(deliver_tick, from_shard, dst_shard,
/// packets, receipts)` — everything `from_shard` emitted towards
/// `dst_shard` during tick `deliver_tick − 1`.
type FlushItem = (u64, usize, usize, Vec<NodePacket<usize>>, Vec<Receipt>);

/// One sender's share of a `(tick, shard)` delivery slot:
/// `(from_shard, packets, receipts)`.
type Contribution = (usize, Vec<NodePacket<usize>>, Vec<Receipt>);

/// One lookahead exchange between event-loop workers. With empty
/// `items` this is a pure null message: it carries only the promise.
struct Flush {
    from: usize,
    /// The sender promises to deliver nothing at ticks ≤ `safe` beyond
    /// the items flushed so far — the receiver may execute through
    /// `safe` without hearing from this sender again.
    safe: u64,
    items: Vec<FlushItem>,
}

enum FromWorker {
    Ticked { outputs: Vec<(usize, ShardOutput)> },
    Done { shards: Vec<HostShard> },
}

fn worker_loop(
    mut shards: Vec<HostShard>,
    ctx: TickCtx,
    tick_ns: u64,
    rx: Receiver<ToWorker>,
    tx: SyncSender<FromWorker>,
) {
    loop {
        match rx.recv().expect("coordinator hung up mid-run") {
            ToWorker::Tick { tick, batches } => {
                let now = SimTime::from_nanos(tick * tick_ns);
                let next = now + SimTime::from_nanos(tick_ns);
                let mut outputs = Vec::with_capacity(batches.len());
                for (shard_id, inbound, cmds) in batches {
                    let shard = shards
                        .iter_mut()
                        .find(|s| s.id == shard_id)
                        .expect("worker owns the shard it is asked to step");
                    outputs.push((shard_id, shard.tick(tick, now, next, &ctx, inbound, &cmds)));
                }
                tx.send(FromWorker::Ticked { outputs })
                    .expect("coordinator hung up mid-run");
            }
            ToWorker::Finish => {
                tx.send(FromWorker::Done {
                    shards: std::mem::take(&mut shards),
                })
                .expect("coordinator hung up at finish");
                return;
            }
        }
    }
}

/// The per-worker state of the event-driven engine: the shards this
/// worker owns plus their merged event queue — pending deliveries
/// keyed by `(tick, local shard)`, the tick-sorted command stream, and
/// a wake heap lazily invalidated through `wake_at` (an entry is live
/// only while it equals the shard's authoritative deadline).
struct EventWorker {
    me: usize,
    ctx: TickCtx,
    tick_ns: u64,
    ticks: u64,
    /// Shard id → owning worker.
    owner: Vec<usize>,
    /// Owned shards, ascending id.
    shards: Vec<HostShard>,
    /// Shard id → index into `shards`.
    // audit: allow(determinism) -- keyed get() only, never iterated
    local_index: HashMap<usize, usize>,
    /// This worker's shards' commands, tick order.
    commands: Vec<(u64, usize, HostCmd)>,
    cmd_cursor: usize,
    /// `(deliver_tick, local shard)` → per-sender contributions, each
    /// tagged with the sending shard so consumption can merge them in
    /// sending-shard order regardless of arrival order.
    pending: BTreeMap<(u64, usize), Vec<Contribution>>,
    wake_at: Vec<u64>,
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Cross-worker emissions awaiting the next flush, by destination
    /// worker.
    outbox: Vec<Vec<FlushItem>>,
    /// Harness self-profiling for this worker (heap churn, null
    /// messages) — diagnostic only, never part of the simulated state.
    profile: EngineProfile,
}

impl EventWorker {
    /// The earliest tick ≥ `t` at which any owned shard has an event:
    /// the next sample boundary (global, mandatory), the next command,
    /// the earliest pending delivery, or the earliest live wake
    /// deadline. Stale heap entries are discarded on the way.
    fn next_event(&mut self, t: u64) -> u64 {
        let every = self.ctx.sample_every_ticks;
        let mut e = t + (every - 1 - (t % every));
        if let Some((ct, _, _)) = self.commands.get(self.cmd_cursor) {
            e = e.min((*ct).max(t));
        }
        if let Some((&(dt, _), _)) = self.pending.first_key_value() {
            e = e.min(dt.max(t));
        }
        while let Some(&Reverse((wt, s))) = self.heap.peek() {
            if self.wake_at[s] == wt {
                e = e.min(wt.max(t));
                break;
            }
            self.heap.pop();
            self.profile.wake_stale_pops += 1;
        }
        e
    }

    /// Executes tick `e` across the owned shards that have work —
    /// exactly the work the stepped engine would do, minus the shards
    /// with provably nothing to observe.
    fn execute_tick(&mut self, e: u64) {
        let ctx = self.ctx;
        let now = SimTime::from_nanos(e * self.tick_ns);
        let next = SimTime::from_nanos((e + 1) * self.tick_ns);
        let sample = (e + 1).is_multiple_of(ctx.sample_every_ticks);
        let mut cmds_for: Vec<Vec<HostCmd>> = vec![Vec::new(); self.shards.len()];
        while let Some((ct, sid, cmd)) = self.commands.get(self.cmd_cursor) {
            if *ct > e {
                break;
            }
            cmds_for[self.local_index[sid]].push(cmd.clone());
            self.cmd_cursor += 1;
        }
        for (li, cmds) in cmds_for.iter().enumerate() {
            let inbound = self.pending.remove(&(e, li)).map(|mut contribs| {
                contribs.sort_by_key(|(from, _, _)| *from);
                let mut inb = Inbound::default();
                for (_, pkts, rcpts) in contribs {
                    inb.packets.extend(pkts);
                    inb.receipts.extend(rcpts);
                }
                inb
            });
            let must = sample || inbound.is_some() || !cmds.is_empty() || self.wake_at[li] <= e;
            if !must {
                continue;
            }
            let out = self.shards[li].tick(e, now, next, &ctx, inbound.unwrap_or_default(), cmds);
            let sid = self.shards[li].id;
            // Emissions from the final tick would deliver past the end
            // of the run; the stepped engine drops them the same way.
            if e + 1 < self.ticks {
                for (dst, (pkts, rcpts)) in out.packets.into_iter().zip(out.receipts).enumerate() {
                    if pkts.is_empty() && rcpts.is_empty() {
                        continue;
                    }
                    let w = self.owner[dst];
                    if w == self.me {
                        self.pending
                            .entry((e + 1, self.local_index[&dst]))
                            .or_default()
                            .push((sid, pkts, rcpts));
                    } else {
                        self.outbox[w].push((e + 1, sid, dst, pkts, rcpts));
                    }
                }
            }
            let w = self.shards[li].next_wake(e + 1, &ctx, self.tick_ns);
            self.wake_at[li] = w;
            if w != u64::MAX {
                self.heap.push(Reverse((w, li)));
                self.profile.wake_pushes += 1;
            }
        }
        // Every deadline ≤ e belonged to a shard that just ran (a live
        // wake ≤ e forces `must`) and was re-scheduled past `e`.
        while let Some(&Reverse((wt, _))) = self.heap.peek() {
            if wt <= e {
                self.heap.pop();
                self.profile.wake_stale_pops += 1;
            } else {
                break;
            }
        }
    }

    /// Records one outgoing flush in the profile. Terminal promises
    /// (`safe == u64::MAX`) are counted but not logged — they carry no
    /// meaningful tick.
    fn note_flush(&mut self, to: usize, safe: u64, items: usize) {
        self.profile.flushes += 1;
        self.profile.flush_items += items as u64;
        if items == 0 {
            self.profile.null_messages += 1;
        }
        if safe != u64::MAX && self.profile.flush_log.len() < FLUSH_LOG_CAP {
            let seq = self.profile.flush_log.len() as u32;
            self.profile.flush_log.push(TraceEvent {
                at_ns: safe.saturating_mul(self.tick_ns),
                host: self.me as u32,
                seq,
                cause: CauseId::NONE,
                kind: TraceEventKind::FlushExchange {
                    from: self.me as u32,
                    to: to as u32,
                    safe_tick: safe,
                    items: items as u32,
                },
            });
        }
    }

    /// Folds one peer flush in: advance that peer's promise, file its
    /// deliveries.
    // audit: allow(determinism) -- frontier is only get_mut() here and min-folded by the caller; both order-independent
    fn absorb(&mut self, frontier: &mut HashMap<usize, u64>, msg: Flush) {
        let f = frontier
            .get_mut(&msg.from)
            .expect("flush from a known peer");
        *f = (*f).max(msg.safe);
        for (dt, from, dst, pkts, rcpts) in msg.items {
            if dt >= self.ticks {
                continue;
            }
            let li = self.local_index[&dst];
            self.pending
                .entry((dt, li))
                .or_default()
                .push((from, pkts, rcpts));
        }
    }
}

/// The event-driven worker: run ahead to the horizon the peers'
/// promises allow, executing only event-bearing ticks; flush emissions
/// plus a `safe = horizon + 1` promise; block until the horizon moves.
fn worker_event_loop(
    mut w: EventWorker,
    peers: Vec<(usize, SyncSender<Flush>)>,
    rx: Receiver<Flush>,
) -> (Vec<HostShard>, EngineProfile) {
    let ticks = w.ticks;
    // audit: allow(determinism) -- consumed via a min() fold over values: commutative, order cannot reach the report
    let mut frontier: HashMap<usize, u64> = peers.iter().map(|(p, _)| (*p, 0)).collect();
    let mut t: u64 = 0;
    loop {
        let h = frontier
            .values()
            .copied()
            .min()
            .unwrap_or(u64::MAX)
            .min(ticks - 1);
        while t <= h {
            let e = w.next_event(t);
            if e > h {
                break;
            }
            w.execute_tick(e);
            t = e + 1;
        }
        // No event in (t, h] — skip straight past the horizon.
        t = h + 1;
        if t >= ticks {
            // Peers may still be behind: leave them a terminal promise
            // (ignore peers that already finished and hung up).
            for (p, tx) in &peers {
                let items = std::mem::take(&mut w.outbox[*p]);
                w.note_flush(*p, u64::MAX, items.len());
                let _ = tx.send(Flush {
                    from: w.me,
                    safe: u64::MAX,
                    items,
                });
            }
            return (w.shards, w.profile);
        }
        for (p, tx) in &peers {
            let items = std::mem::take(&mut w.outbox[*p]);
            w.note_flush(*p, h + 1, items.len());
            let _ = tx.send(Flush {
                from: w.me,
                safe: h + 1,
                items,
            });
        }
        while frontier.values().copied().min().unwrap_or(u64::MAX) <= h {
            let msg = rx.recv().expect("peer worker hung up mid-run");
            w.absorb(&mut frontier, msg);
            while let Ok(m) = rx.try_recv() {
                w.absorb(&mut frontier, m);
            }
        }
    }
}

impl FleetSim {
    /// Number of host shards.
    pub fn host_count(&self) -> usize {
        self.shards.len()
    }

    /// Overrides the trace configuration after construction and rewires
    /// every shard's tracer accordingly — the fleet counterpart of
    /// [`pi_sim::Simulation::set_trace`]. Tracers are strictly
    /// shard-local (per-host rings, merged canonically at assembly), so
    /// enabling tracing cannot disturb worker-count determinism.
    pub fn set_trace(&mut self, trace: TraceConfig) {
        self.cfg.sim.trace = trace;
        for shard in &mut self.shards {
            let tracer = if trace.enabled {
                Tracer::for_host(trace, shard.id as u32)
            } else {
                Tracer::disabled()
            };
            shard.node.set_tracer(tracer);
        }
    }

    /// Runs to completion and reports. Dispatches on
    /// [`pi_sim::SimConfig::event_driven`]: the event-driven engine is
    /// the default; the tick-stepped barrier engine remains available
    /// as the equivalence reference. Both produce bit-identical
    /// reports for any worker count.
    pub fn run(self) -> FleetReport {
        if self.cfg.sim.event_driven {
            self.run_event()
        } else {
            self.run_stepped()
        }
    }

    /// The event-driven engine: per-worker event queues with
    /// bounded-lookahead synchronisation (see the module docs).
    fn run_event(self) -> FleetReport {
        let FleetSim {
            cfg,
            shards,
            commands,
        } = self;
        let n = shards.len();
        let workers = cfg.effective_workers().min(n.max(1));
        let sim = cfg.sim;
        let ctx = TickCtx {
            shards: n,
            cycles_per_tick: sim.cycles_per_tick(),
            link_bytes_per_tick: sim.link_bytes_per_tick(),
            queue_capacity: sim.queue_capacity,
            sample_every_ticks: (sim.sample_interval.as_nanos() / sim.tick.as_nanos()).max(1),
            window_secs: sim.sample_interval.as_secs_f64(),
            cpu_cycles_per_sec: sim.cpu_cycles_per_sec,
            defense_every_ticks: sim.defense_every_ticks(),
        };
        let tick_ns = sim.tick.as_nanos().max(1);
        let ticks = sim.tick_count();
        if ticks == 0 {
            return FleetReport::assemble(
                workers,
                sim.tick,
                0,
                shards,
                sim.trace,
                idle_profiles(workers),
            );
        }

        let owner: Vec<usize> = (0..n).map(|i| i % workers).collect();
        let mut parts: Vec<Vec<HostShard>> = (0..workers).map(|_| Vec::new()).collect();
        for shard in shards {
            parts[shard.id % workers].push(shard);
        }
        let mut part_cmds: Vec<Vec<(u64, usize, HostCmd)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (tick, shard, cmd) in commands {
            part_cmds[owner[shard]].push((tick, shard, cmd));
        }

        // One receiver per worker; every peer holds a sender clone.
        // The capacity bounds run-ahead buffering: a worker enqueues at
        // most a couple of flushes per peer before the peer's next
        // drain, so sends only ever block briefly.
        let mut txs: Vec<SyncSender<Flush>> = Vec::with_capacity(workers);
        let mut rxs: Vec<Receiver<Flush>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = std::sync::mpsc::sync_channel::<Flush>(8 * workers.max(2));
            txs.push(tx);
            rxs.push(rx);
        }
        let mut handles = Vec::with_capacity(workers);
        for (me, ((part, cmds), rx)) in parts.into_iter().zip(part_cmds).zip(rxs).enumerate() {
            let peers: Vec<(usize, SyncSender<Flush>)> = (0..workers)
                .filter(|p| *p != me)
                .map(|p| (p, txs[p].clone()))
                .collect();
            // audit: allow(determinism) -- keyed get() only, never iterated
            let local_index: HashMap<usize, usize> =
                part.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
            let wake_at: Vec<u64> = part.iter().map(|s| s.next_wake(0, &ctx, tick_ns)).collect();
            let heap: BinaryHeap<Reverse<(u64, usize)>> = wake_at
                .iter()
                .enumerate()
                .filter(|(_, w)| **w != u64::MAX)
                .map(|(i, w)| Reverse((*w, i)))
                .collect();
            let ew = EventWorker {
                me,
                ctx,
                tick_ns,
                ticks,
                owner: owner.clone(),
                shards: part,
                local_index,
                commands: cmds,
                cmd_cursor: 0,
                pending: BTreeMap::new(),
                wake_at,
                heap,
                outbox: (0..workers).map(|_| Vec::new()).collect(),
                profile: EngineProfile {
                    worker: me,
                    ..EngineProfile::default()
                },
            };
            handles.push(thread::spawn(move || worker_event_loop(ew, peers, rx)));
        }
        drop(txs);

        let mut final_shards: Vec<Option<HostShard>> = (0..n).map(|_| None).collect();
        let mut profiles: Vec<EngineProfile> = Vec::with_capacity(workers);
        for handle in handles {
            let (shards, profile) = handle.join().expect("worker panicked");
            profiles.push(profile);
            for s in shards {
                let id = s.id;
                final_shards[id] = Some(s);
            }
        }
        FleetReport::assemble(
            workers,
            sim.tick,
            ticks,
            final_shards
                .into_iter()
                .map(|s| s.expect("all shards returned"))
                .collect(),
            sim.trace,
            profiles,
        )
    }

    /// The tick-stepped reference engine: every shard steps every tick
    /// behind a global epoch barrier.
    fn run_stepped(self) -> FleetReport {
        let FleetSim {
            cfg,
            shards,
            commands,
        } = self;
        let n = shards.len();
        let workers = cfg.effective_workers().min(n.max(1));
        let sim = cfg.sim;
        let ctx = TickCtx {
            shards: n,
            cycles_per_tick: sim.cycles_per_tick(),
            link_bytes_per_tick: sim.link_bytes_per_tick(),
            queue_capacity: sim.queue_capacity,
            sample_every_ticks: (sim.sample_interval.as_nanos() / sim.tick.as_nanos()).max(1),
            window_secs: sim.sample_interval.as_secs_f64(),
            cpu_cycles_per_sec: sim.cpu_cycles_per_sec,
            defense_every_ticks: sim.defense_every_ticks(),
        };
        let tick_ns = sim.tick.as_nanos();
        let ticks = sim.tick_count();

        // Partition shards round-robin over workers; remember the owner
        // of each shard id.
        let owner: Vec<usize> = (0..n).map(|i| i % workers).collect();
        let mut parts: Vec<Vec<HostShard>> = (0..workers).map(|_| Vec::new()).collect();
        for shard in shards {
            parts[shard.id % workers].push(shard);
        }

        // Bounded channels: one in-flight epoch per worker keeps the
        // pipeline tight without unbounded buffering.
        let mut to_workers: Vec<SyncSender<ToWorker>> = Vec::with_capacity(workers);
        let mut from_workers: Vec<Receiver<FromWorker>> = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for part in parts {
            let (cmd_tx, cmd_rx) = std::sync::mpsc::sync_channel::<ToWorker>(1);
            let (res_tx, res_rx) = std::sync::mpsc::sync_channel::<FromWorker>(1);
            to_workers.push(cmd_tx);
            from_workers.push(res_rx);
            handles.push(thread::spawn(move || {
                worker_loop(part, ctx, tick_ns, cmd_rx, res_tx)
            }));
        }

        let mut inbounds: Vec<Inbound> = (0..n).map(|_| Inbound::default()).collect();
        let mut cmd_cursor = 0usize;
        for tick in 0..ticks {
            // Commands scheduled for this epoch, already in shard order
            // within the tick.
            let mut tick_cmds: Vec<Vec<HostCmd>> = (0..n).map(|_| Vec::new()).collect();
            while cmd_cursor < commands.len() && commands[cmd_cursor].0 <= tick {
                let (_, shard, cmd) = commands[cmd_cursor].clone();
                tick_cmds[shard].push(cmd);
                cmd_cursor += 1;
            }

            // Dispatch: hand every worker its shards' inbound + cmds.
            let mut batches: Vec<Vec<(usize, Inbound, Vec<HostCmd>)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (shard_id, inbound) in inbounds.drain(..).enumerate() {
                batches[owner[shard_id]].push((
                    shard_id,
                    inbound,
                    std::mem::take(&mut tick_cmds[shard_id]),
                ));
            }
            for (w, batch) in batches.into_iter().enumerate() {
                to_workers[w]
                    .send(ToWorker::Tick {
                        tick,
                        batches: batch,
                    })
                    .expect("worker died mid-run");
            }

            // Barrier: collect every shard's output, then merge for the
            // next epoch in sending-shard order.
            let mut outputs: Vec<Option<ShardOutput>> = (0..n).map(|_| None).collect();
            for rx in &from_workers {
                match rx.recv().expect("worker died mid-run") {
                    FromWorker::Ticked { outputs: outs } => {
                        for (shard_id, out) in outs {
                            outputs[shard_id] = Some(out);
                        }
                    }
                    FromWorker::Done { .. } => unreachable!("workers only finish on request"),
                }
            }
            inbounds = (0..n).map(|_| Inbound::default()).collect();
            for output in outputs.into_iter().map(|o| o.expect("every shard stepped")) {
                for (dst, pkts) in output.packets.into_iter().enumerate() {
                    inbounds[dst].packets.extend(pkts);
                }
                for (home, receipts) in output.receipts.into_iter().enumerate() {
                    inbounds[home].receipts.extend(receipts);
                }
            }
        }

        // Tear down and collect the shards back in id order.
        for tx in &to_workers {
            tx.send(ToWorker::Finish).expect("worker died at finish");
        }
        let mut final_shards: Vec<Option<HostShard>> = (0..n).map(|_| None).collect();
        for rx in &from_workers {
            match rx.recv().expect("worker died at finish") {
                FromWorker::Done { shards } => {
                    for s in shards {
                        let id = s.id;
                        final_shards[id] = Some(s);
                    }
                }
                FromWorker::Ticked { .. } => unreachable!("no ticks outstanding at finish"),
            }
        }
        for h in handles {
            h.join().expect("worker panicked");
        }

        FleetReport::assemble(
            workers,
            sim.tick,
            ticks,
            final_shards
                .into_iter()
                .map(|s| s.expect("all shards returned"))
                .collect(),
            sim.trace,
            idle_profiles(workers),
        )
    }
}

/// Zeroed per-worker profiles for engines that do no lookahead
/// coordination (the tick-stepped barrier engine, zero-tick runs).
fn idle_profiles(workers: usize) -> Vec<EngineProfile> {
    (0..workers)
        .map(|worker| EngineProfile {
            worker,
            ..EngineProfile::default()
        })
        .collect()
}
