//! Pre-built fleet-scale experiments.
//!
//! * [`fleet_colocation`] — k attacker pods spread across n hosts by
//!   adversarial co-location, attacking m victims: the multi-tenant
//!   blast-radius question the two-node testbed cannot ask.
//! * [`fleet_migration`] — victims rescheduled off a saturated host
//!   mid-run: does moving the tenants away actually restore service?
//! * [`fleet_sparse`] — a large fleet where only a handful of hosts see
//!   traffic: the event-driven engine's home turf, and the workload the
//!   `fleet_scaling` bench uses to measure tick-skipping.

use pi_attack::{AttackSchedule, AttackSpec};
use pi_cms::{Cidr, IngressRule, NetworkPolicy, PlacementStrategy, Protocol};
use pi_core::{FlowKey, SimTime};
use pi_datapath::DpConfig;
use pi_sim::SimConfig;
use pi_traffic::{IperfSource, PoissonFlowSource};

use crate::config::FleetConfig;
use crate::engine::FleetSim;
use crate::placement::ClusterBuilder;

/// The victim's own microsegmentation: allow cluster traffic to iperf.
fn victim_policy() -> NetworkPolicy {
    NetworkPolicy {
        name: "victim-iperf".into(),
        ingress: vec![IngressRule {
            from: vec![Cidr::new(u32::from_be_bytes([10, 0, 0, 0]), 8).unwrap()],
            ports: vec![(Protocol::Tcp, Some(5201))],
        }],
    }
}

/// Parameters of the co-location experiment.
#[derive(Debug, Clone)]
pub struct ColocationParams {
    /// Fleet size, hosts.
    pub hosts: usize,
    /// Victim service pods (one tenant, placed by `victim_placement`).
    pub victims: usize,
    /// Attacker pods (one tenant, placed by adversarial co-location).
    pub attackers: usize,
    /// The injected policy shape.
    pub spec: AttackSpec,
    /// First covert stream start.
    pub attack_start: SimTime,
    /// Per-attacker covert budget, bits/second.
    pub attack_bandwidth_bps: f64,
    /// Start stagger between consecutive attackers.
    pub stagger: SimTime,
    /// Victim link-limited rate, bits/second.
    pub victim_rate_bps: f64,
    /// Run length.
    pub duration: SimTime,
    /// Per-host datapath CPU budget, cycles/second.
    pub cpu_cycles_per_sec: u64,
    /// Datapath configuration for every host.
    pub dp: DpConfig,
    /// Add background pod-to-pod chatter on every host.
    pub background: bool,
    /// Seed for background workloads.
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
    /// How the scheduler spreads the victim pods.
    pub victim_placement: PlacementStrategy,
}

impl Default for ColocationParams {
    fn default() -> Self {
        ColocationParams {
            hosts: 4,
            victims: 4,
            attackers: 2,
            spec: AttackSpec::masks_8192(),
            attack_start: SimTime::from_secs(10),
            attack_bandwidth_bps: 2e6,
            stagger: SimTime::from_secs(2),
            victim_rate_bps: 1e9,
            duration: SimTime::from_secs(30),
            cpu_cycles_per_sec: SimConfig::default().cpu_cycles_per_sec,
            dp: DpConfig::default(),
            background: true,
            seed: 2018,
            workers: 1,
            victim_placement: PlacementStrategy::RoundRobin,
        }
    }
}

/// Source/host indices of the built co-location scenario.
#[derive(Debug, Clone)]
pub struct ColocationHandles {
    /// Victim iperf source per victim pod (report order = pod order).
    pub victim_sources: Vec<usize>,
    /// Covert stream source per attacker pod.
    pub attack_sources: Vec<usize>,
    /// Background sources (one per host), when enabled.
    pub background_sources: Vec<usize>,
    /// Hosts carrying a victim pod.
    pub victim_hosts: Vec<usize>,
    /// Hosts carrying an attacker pod — the intended blast footprint.
    pub attacker_hosts: Vec<usize>,
}

/// Builds the co-location experiment: victims spread per the placement
/// strategy, attackers landing next to them, every covert stream
/// arriving over the fabric from a client pod on a neighbouring host.
pub fn fleet_colocation(params: &ColocationParams) -> (FleetSim, ColocationHandles) {
    assert!(params.hosts >= 2, "co-location needs at least two hosts");
    let cfg = FleetConfig {
        sim: SimConfig {
            duration: params.duration,
            cpu_cycles_per_sec: params.cpu_cycles_per_sec,
            ..SimConfig::default()
        },
        workers: params.workers,
    };
    let mut cb = ClusterBuilder::new(cfg, params.hosts, params.dp.clone());

    let victim_tenant = cb.add_tenant();
    let attacker_tenant = cb.add_tenant();
    let bg_tenant = cb.add_tenant();

    // Victim service pods + their own legitimate policies.
    let victim_pods = cb.place_pods(victim_tenant, params.victims, params.victim_placement);
    let policy = victim_policy();
    for &pod in &victim_pods {
        cb.apply_and_install(victim_tenant, pod, |c, t, p| {
            c.apply_k8s_policy(t, p, &policy)
        })
        .expect("victim policy admitted");
    }

    // Attacker pods: adversarial co-location, ACL injected through the
    // CMS's own admission path.
    let attacker_pods = cb.place_pods(
        attacker_tenant,
        params.attackers,
        PlacementStrategy::Colocate(victim_tenant),
    );
    let acl = params.spec.build_policy();
    for &pod in &attacker_pods {
        cb.apply_and_install(attacker_tenant, pod, |c, t, p| acl.apply(c, t, p))
            .expect("injected policy admitted");
    }

    // Victim iperf streams: client pod on the next host over.
    let mut victim_sources = Vec::new();
    for (i, &pod) in victim_pods.iter().enumerate() {
        let server = cb.pod(pod).clone();
        let client_host = (cb.host_of(pod) + 1) % params.hosts;
        let client = cb.place_pod_on(victim_tenant, client_host);
        let key = FlowKey::tcp(
            std::net::Ipv4Addr::from(cb.pod(client).ip),
            std::net::Ipv4Addr::from(server.ip),
            40_000 + i as u16,
            5201,
        );
        victim_sources.push(cb.add_source(
            client_host,
            Box::new(
                IperfSource::new(key, 1500, params.victim_rate_bps).named(&format!("victim{i}")),
            ),
        ));
    }

    // Covert streams: one paced schedule per attacker pod, staggered,
    // each injected from a client pod on the next host over.
    let attacker_ips: Vec<u32> = attacker_pods.iter().map(|p| cb.pod(*p).ip).collect();
    let schedules = AttackSchedule::fan_out(
        &params.spec,
        &attacker_ips,
        params.attack_bandwidth_bps,
        params.attack_start,
        params.stagger,
    );
    let mut attack_sources = Vec::new();
    for (&pod, schedule) in attacker_pods.iter().zip(schedules) {
        let client_host = (cb.host_of(pod) + 1) % params.hosts;
        cb.place_pod_on(attacker_tenant, client_host);
        attack_sources.push(cb.add_source(client_host, Box::new(schedule)));
    }

    // Background chatter: one unprotected pod + Poisson source per host.
    let mut background_sources = Vec::new();
    if params.background {
        for host in 0..params.hosts {
            let pod = cb.place_pod_on(bg_tenant, host);
            let dst = cb.pod(pod).ip;
            let src_host = (host + 1) % params.hosts;
            background_sources.push(
                cb.add_source(
                    src_host,
                    Box::new(
                        PoissonFlowSource::new(
                            (0..8u32)
                                .map(|i| (u32::from_be_bytes([10, 0, 200, i as u8]), dst))
                                .collect(),
                            10.0,
                            20.0,
                            200.0,
                            200,
                            params.seed ^ host as u64,
                        )
                        .named(&format!("background{host}")),
                    ),
                ),
            );
        }
    }

    let victim_hosts: Vec<usize> = victim_pods.iter().map(|p| cb.host_of(*p)).collect();
    let attacker_hosts: Vec<usize> = attacker_pods.iter().map(|p| cb.host_of(*p)).collect();
    (
        cb.build(),
        ColocationHandles {
            victim_sources,
            attack_sources,
            background_sources,
            victim_hosts,
            attacker_hosts,
        },
    )
}

/// Parameters of the sparse-fleet experiment.
#[derive(Debug, Clone)]
pub struct SparseParams {
    /// Fleet size, hosts. Most are idle: each carries one attached pod
    /// that never sends or receives.
    pub hosts: usize,
    /// Hosts that actually see traffic (the first `hot_hosts` of the
    /// fleet). Victims, attacker and every client pod stay inside this
    /// set so the remaining hosts are provably quiescent.
    pub hot_hosts: usize,
    /// The injected policy shape on the attacker pod (host 0).
    pub spec: AttackSpec,
    /// Covert stream start.
    pub attack_start: SimTime,
    /// Covert budget, bits/second.
    pub attack_bandwidth_bps: f64,
    /// Victim link-limited rate, bits/second.
    pub victim_rate_bps: f64,
    /// Run length.
    pub duration: SimTime,
    /// Per-host datapath CPU budget, cycles/second.
    pub cpu_cycles_per_sec: u64,
    /// Datapath configuration for every host.
    pub dp: DpConfig,
    /// Worker threads.
    pub workers: usize,
    /// Engine selection: `true` = event-driven (the default engine),
    /// `false` = the tick-stepped reference. Exposed so the bench can
    /// time both on the identical build.
    pub event_driven: bool,
}

impl Default for SparseParams {
    fn default() -> Self {
        SparseParams {
            hosts: 96,
            hot_hosts: 4,
            spec: AttackSpec::masks_512(pi_cms::PolicyDialect::Kubernetes),
            attack_start: SimTime::from_secs(2),
            attack_bandwidth_bps: 1e6,
            // Modest service traffic, not a saturated iperf: the point
            // of the sparse fleet is that almost nothing is happening.
            victim_rate_bps: 2e6,
            duration: SimTime::from_secs(10),
            cpu_cycles_per_sec: SimConfig::default().cpu_cycles_per_sec,
            dp: DpConfig::default(),
            workers: 1,
            event_driven: true,
        }
    }
}

/// Source/host indices of the built sparse-fleet scenario.
#[derive(Debug, Clone)]
pub struct SparseHandles {
    /// Victim iperf source per hot host.
    pub victim_sources: Vec<usize>,
    /// The covert stream source.
    pub attack_source: usize,
    /// Hosts that see traffic.
    pub hot_hosts: Vec<usize>,
    /// Hosts that never do.
    pub idle_hosts: Vec<usize>,
}

/// Builds the sparse fleet: one victim iperf pair per hot host, the
/// injected policy and its covert stream on host 0, and `hosts −
/// hot_hosts` idle hosts each carrying a single silent pod. Idle hosts
/// have no sources, defenses or scheduled events, so the event-driven
/// engine skips them for the whole run; the tick-stepped reference
/// walks all of them every tick.
pub fn fleet_sparse(params: &SparseParams) -> (FleetSim, SparseHandles) {
    let hot = params.hot_hosts.clamp(2, params.hosts);
    let cfg = FleetConfig {
        sim: SimConfig {
            duration: params.duration,
            cpu_cycles_per_sec: params.cpu_cycles_per_sec,
            event_driven: params.event_driven,
            ..SimConfig::default()
        },
        workers: params.workers,
    };
    let mut cb = ClusterBuilder::new(cfg, params.hosts, params.dp.clone());

    let victim_tenant = cb.add_tenant();
    let attacker_tenant = cb.add_tenant();
    let idle_tenant = cb.add_tenant();

    // One victim pod + client pair per hot host, clients staying inside
    // the hot set.
    let policy = victim_policy();
    let mut victim_sources = Vec::new();
    for i in 0..hot {
        let pod = cb.place_pod_on(victim_tenant, i);
        cb.apply_and_install(victim_tenant, pod, |c, t, p| {
            c.apply_k8s_policy(t, p, &policy)
        })
        .expect("victim policy admitted");
        let client_host = (i + 1) % hot;
        let client = cb.place_pod_on(victim_tenant, client_host);
        let key = FlowKey::tcp(
            std::net::Ipv4Addr::from(cb.pod(client).ip),
            std::net::Ipv4Addr::from(cb.pod(pod).ip),
            40_000 + i as u16,
            5201,
        );
        victim_sources.push(cb.add_source(
            client_host,
            Box::new(
                IperfSource::new(key, 1500, params.victim_rate_bps).named(&format!("victim{i}")),
            ),
        ));
    }

    // The injected policy on host 0, covert stream from host 1.
    let attacker_pod = cb.place_pod_on(attacker_tenant, 0);
    let acl = params.spec.build_policy();
    cb.apply_and_install(attacker_tenant, attacker_pod, |c, t, p| acl.apply(c, t, p))
        .expect("injected policy admitted");
    let attacker_ip = cb.pod(attacker_pod).ip;
    cb.place_pod_on(attacker_tenant, 1 % hot);
    let schedule = AttackSchedule::fan_out(
        &params.spec,
        &[attacker_ip],
        params.attack_bandwidth_bps,
        params.attack_start,
        SimTime::ZERO,
    )
    .remove(0);
    let attack_source = cb.add_source(1 % hot, Box::new(schedule));

    // The idle bulk: one silent pod per remaining host.
    let mut idle_hosts = Vec::new();
    for host in hot..params.hosts {
        cb.place_pod_on(idle_tenant, host);
        idle_hosts.push(host);
    }

    (
        cb.build(),
        SparseHandles {
            victim_sources,
            attack_source,
            hot_hosts: (0..hot).collect(),
            idle_hosts,
        },
    )
}

/// Parameters of the migration experiment.
#[derive(Debug, Clone)]
pub struct MigrationParams {
    /// Fleet size, hosts (victims start on host 0).
    pub hosts: usize,
    /// Victim pods co-located with the attacker on host 0.
    pub victims: usize,
    /// The injected policy shape.
    pub spec: AttackSpec,
    /// Covert stream start.
    pub attack_start: SimTime,
    /// Covert budget, bits/second.
    pub attack_bandwidth_bps: f64,
    /// When the scheduler evacuates the victims off host 0.
    pub migrate_at: SimTime,
    /// Victim link-limited rate, bits/second.
    pub victim_rate_bps: f64,
    /// Run length.
    pub duration: SimTime,
    /// Per-host datapath CPU budget, cycles/second.
    pub cpu_cycles_per_sec: u64,
    /// Datapath configuration for every host.
    pub dp: DpConfig,
    /// Worker threads.
    pub workers: usize,
}

impl Default for MigrationParams {
    fn default() -> Self {
        MigrationParams {
            hosts: 4,
            victims: 3,
            spec: AttackSpec::masks_8192(),
            attack_start: SimTime::from_secs(5),
            attack_bandwidth_bps: 2e6,
            migrate_at: SimTime::from_secs(20),
            victim_rate_bps: 1e9,
            duration: SimTime::from_secs(35),
            cpu_cycles_per_sec: SimConfig::default().cpu_cycles_per_sec,
            dp: DpConfig::default(),
            workers: 1,
        }
    }
}

/// Source/host indices of the built migration scenario.
#[derive(Debug, Clone)]
pub struct MigrationHandles {
    /// Victim iperf sources.
    pub victim_sources: Vec<usize>,
    /// The covert stream source.
    pub attack_source: usize,
    /// The host the attack saturates (victims start here).
    pub saturated_host: usize,
    /// Destination host per victim pod after evacuation.
    pub migration_targets: Vec<usize>,
}

/// Builds the migration experiment: everyone starts co-located on host
/// 0; at `migrate_at` the scheduler live-migrates every victim pod to a
/// clean host, leaving the attacker alone with its saturated switch.
pub fn fleet_migration(params: &MigrationParams) -> (FleetSim, MigrationHandles) {
    assert!(params.hosts >= 2, "migration needs somewhere to go");
    let cfg = FleetConfig {
        sim: SimConfig {
            duration: params.duration,
            cpu_cycles_per_sec: params.cpu_cycles_per_sec,
            ..SimConfig::default()
        },
        workers: params.workers,
    };
    let mut cb = ClusterBuilder::new(cfg, params.hosts, params.dp.clone());

    let victim_tenant = cb.add_tenant();
    let attacker_tenant = cb.add_tenant();

    // Pack victims and attacker together on host 0.
    let pack = PlacementStrategy::BinPacked {
        capacity: params.victims + 1,
    };
    let victim_pods = cb.place_pods(victim_tenant, params.victims, pack);
    let attacker_pod = cb.place_pods(attacker_tenant, 1, pack)[0];
    let saturated_host = cb.host_of(attacker_pod);
    assert_eq!(saturated_host, 0, "everyone packs onto host 0");

    let policy = victim_policy();
    for &pod in &victim_pods {
        cb.apply_and_install(victim_tenant, pod, |c, t, p| {
            c.apply_k8s_policy(t, p, &policy)
        })
        .expect("victim policy admitted");
    }
    let acl = params.spec.build_policy();
    cb.apply_and_install(attacker_tenant, attacker_pod, |c, t, p| acl.apply(c, t, p))
        .expect("injected policy admitted");

    // Victim clients on the other hosts.
    let mut victim_sources = Vec::new();
    for (i, &pod) in victim_pods.iter().enumerate() {
        let client_host = 1 + (i % (params.hosts - 1));
        let client = cb.place_pod_on(victim_tenant, client_host);
        let key = FlowKey::tcp(
            std::net::Ipv4Addr::from(cb.pod(client).ip),
            std::net::Ipv4Addr::from(cb.pod(pod).ip),
            40_000 + i as u16,
            5201,
        );
        victim_sources.push(cb.add_source(
            client_host,
            Box::new(
                IperfSource::new(key, 1500, params.victim_rate_bps).named(&format!("victim{i}")),
            ),
        ));
    }

    // The covert stream, from an attacker client pod on host 1.
    let attacker_ip = cb.pod(attacker_pod).ip;
    cb.place_pod_on(attacker_tenant, 1);
    let schedule = AttackSchedule::fan_out(
        &params.spec,
        &[attacker_ip],
        params.attack_bandwidth_bps,
        params.attack_start,
        SimTime::ZERO,
    )
    .remove(0);
    let attack_source = cb.add_source(1, Box::new(schedule));

    // The evacuation: spread the victims over the clean hosts.
    let mut migration_targets = Vec::new();
    for (i, &pod) in victim_pods.iter().enumerate() {
        let target = 1 + (i % (params.hosts - 1));
        cb.schedule_migration(params.migrate_at, pod, target);
        migration_targets.push(target);
    }

    (
        cb.build(),
        MigrationHandles {
            victim_sources,
            attack_source,
            saturated_host,
            migration_targets,
        },
    )
}
