//! Fleet-run parameters.

use pi_sim::SimConfig;

/// Global knobs of a cluster run: the per-host physics of
/// [`SimConfig`] plus the execution parallelism.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Per-host simulation physics (tick, duration, CPU budget, queue,
    /// fabric link rate, sampling).
    pub sim: SimConfig,
    /// Worker threads stepping host shards. `1` runs every shard on a
    /// single worker; results are identical for any value (the epoch
    /// synchronizer merges cross-host traffic in shard order).
    pub workers: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            sim: SimConfig::default(),
            workers: 1,
        }
    }
}

impl FleetConfig {
    /// A config with `workers` threads and default physics.
    pub fn with_workers(workers: usize) -> Self {
        FleetConfig {
            workers,
            ..Default::default()
        }
    }

    /// Effective worker count (at least one).
    pub fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_is_clamped_to_one() {
        assert_eq!(FleetConfig::default().effective_workers(), 1);
        let c = FleetConfig {
            workers: 0,
            ..Default::default()
        };
        assert_eq!(c.effective_workers(), 1);
        assert_eq!(FleetConfig::with_workers(8).effective_workers(), 8);
    }
}
