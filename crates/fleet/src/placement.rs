//! [`ClusterBuilder`]: tenant placement on top of the `pi_cms`
//! tenant/pod model, glued to the fleet engine.
//!
//! The CMS owns identity (tenants, pods, IPs, vports, policy
//! admission); the fleet engine owns execution (shards, queues, cycle
//! budgets). The builder keeps the two consistent: every pod the cloud
//! schedules is attached to its shard's switch, and every policy that
//! passes CMS admission lands on the right home switch.

use pi_cms::cloud::CompiledPolicy;
use pi_cms::{Cloud, CmsError, NodeId, PlacementStrategy, Pod, PodId, TenantId};
use pi_datapath::DpConfig;
use pi_traffic::TrafficSource;

use crate::config::FleetConfig;
use crate::engine::{FleetBuilder, FleetSim};
use pi_core::SimTime;

/// Builds a cluster: a CMS cloud and a fleet simulation, kept in sync.
pub struct ClusterBuilder {
    cloud: Cloud,
    fleet: FleetBuilder,
}

impl ClusterBuilder {
    /// A cluster of `hosts` identical hosts.
    pub fn new(cfg: FleetConfig, hosts: usize, dp: DpConfig) -> Self {
        let mut cloud = Cloud::new();
        let mut fleet = FleetBuilder::new(cfg);
        for _ in 0..hosts {
            let node = cloud.add_node();
            let shard = fleet.add_host(dp.clone());
            assert_eq!(node.0 as usize, shard, "cloud nodes mirror fleet shards");
        }
        ClusterBuilder { cloud, fleet }
    }

    /// The management-plane view.
    pub fn cloud(&self) -> &Cloud {
        &self.cloud
    }

    /// Registers a tenant.
    pub fn add_tenant(&mut self) -> TenantId {
        self.cloud.add_tenant()
    }

    /// Schedules `count` pods for `tenant` via `strategy` and attaches
    /// each to its host's switch.
    pub fn place_pods(
        &mut self,
        tenant: TenantId,
        count: usize,
        strategy: PlacementStrategy,
    ) -> Vec<PodId> {
        let ids = self.cloud.place_pods(tenant, count, strategy);
        for id in &ids {
            self.attach(*id);
        }
        ids
    }

    /// Schedules one pod on an explicit host (a client/probe endpoint
    /// whose location the experiment controls).
    pub fn place_pod_on(&mut self, tenant: TenantId, host: usize) -> PodId {
        let id = self.cloud.add_pod(tenant, NodeId(host as u32));
        self.attach(id);
        id
    }

    fn attach(&mut self, id: PodId) {
        let pod = self.cloud.pod(id).expect("pod just scheduled").clone();
        self.fleet
            .add_pod_at(pod.node.0 as usize, pod.ip, pod.vport);
    }

    /// Pod metadata.
    pub fn pod(&self, id: PodId) -> &Pod {
        self.cloud.pod(id).expect("pod exists")
    }

    /// The shard hosting `pod`.
    pub fn host_of(&self, id: PodId) -> usize {
        self.pod(id).node.0 as usize
    }

    /// Installs a policy that already passed CMS admission onto the
    /// pod's home switch.
    pub fn install_policy(&mut self, compiled: &CompiledPolicy) {
        let ip = self.pod(compiled.pod).ip;
        self.fleet.install_acl(ip, compiled.table.clone());
    }

    /// Tenant-applies a policy through the CMS and, on admission,
    /// installs it — the full injection path.
    pub fn apply_and_install(
        &mut self,
        tenant: TenantId,
        pod: PodId,
        apply: impl FnOnce(&Cloud, TenantId, PodId) -> Result<CompiledPolicy, CmsError>,
    ) -> Result<CompiledPolicy, CmsError> {
        let compiled = apply(&self.cloud, tenant, pod)?;
        self.install_policy(&compiled);
        Ok(compiled)
    }

    /// Registers a traffic source injecting at `host`; returns its
    /// global source index.
    pub fn add_source(&mut self, host: usize, source: Box<dyn TrafficSource + Send>) -> usize {
        self.fleet.add_source(host, source)
    }

    /// Schedules a live migration of `pod` to `to_host` at `at`.
    pub fn schedule_migration(&mut self, at: SimTime, pod: PodId, to_host: usize) {
        let ip = self.pod(pod).ip;
        self.fleet.schedule_migration(at, ip, to_host);
    }

    /// Attaches a shard-local defense controller to `host`.
    pub fn attach_defense(&mut self, host: usize, controller: pi_detect::DefenseController) {
        self.fleet.attach_defense(host, controller);
    }

    /// Finalises the cluster.
    pub fn build(self) -> FleetSim {
        self.fleet.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_cms::NetworkPolicy;

    #[test]
    fn cloud_and_fleet_stay_in_sync() {
        let mut cb = ClusterBuilder::new(FleetConfig::default(), 3, DpConfig::default());
        let t = cb.add_tenant();
        let pods = cb.place_pods(t, 6, PlacementStrategy::RoundRobin);
        assert_eq!(pods.len(), 6);
        let hosts: Vec<usize> = pods.iter().map(|p| cb.host_of(*p)).collect();
        for h in 0..3 {
            assert_eq!(hosts.iter().filter(|&&x| x == h).count(), 2);
        }
        let sim = cb.build();
        assert_eq!(sim.host_count(), 3);
    }

    #[test]
    fn policy_injection_goes_through_cms_admission() {
        let mut cb = ClusterBuilder::new(FleetConfig::default(), 2, DpConfig::default());
        let owner = cb.add_tenant();
        let other = cb.add_tenant();
        let pod = cb.place_pods(owner, 1, PlacementStrategy::RoundRobin)[0];
        let policy = NetworkPolicy::allow_from_cidr("mine", "10.0.0.0/8".parse().unwrap());
        let compiled = cb
            .apply_and_install(owner, pod, |c, t, p| c.apply_k8s_policy(t, p, &policy))
            .unwrap();
        assert_eq!(compiled.pod, pod);
        // The tenancy check still bites through the cluster facade.
        let err = cb
            .apply_and_install(other, pod, |c, t, p| c.apply_k8s_policy(t, p, &policy))
            .unwrap_err();
        assert!(matches!(err, CmsError::NotYourPod { .. }));
    }
}
