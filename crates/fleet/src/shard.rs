//! One host shard: a [`NodeCell`] plus the shard-local halves of the
//! cluster protocol — routing, source accounting, outbox/receipt
//! production and sampling.
//!
//! A shard never touches another shard's memory. Everything it learns
//! about the rest of the fleet arrives in its [`Inbound`] for the tick;
//! everything it tells the fleet leaves in its [`ShardOutput`]. That
//! discipline is what makes worker-count-independent determinism
//! provable: the epoch merge (in shard-id order) is the only place
//! cross-host ordering is decided.

// audit: allow(determinism) -- HashMap backs the per-packet route/slot lookups below; all get()-only, never iterated
use std::collections::HashMap;

use pi_classifier::FlowTable;
use pi_core::{Port, SimTime};
use pi_datapath::SwitchStats;
use pi_metrics::TimeSeries;
use pi_sim::{NodeCell, NodePacket, Routing};
use pi_traffic::{GenPacket, TrafficSource};

/// Fixed per-tick parameters shared by every shard.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TickCtx {
    pub shards: usize,
    pub cycles_per_tick: u64,
    pub link_bytes_per_tick: f64,
    pub queue_capacity: usize,
    pub sample_every_ticks: u64,
    pub window_secs: f64,
    pub cpu_cycles_per_sec: u64,
    pub defense_every_ticks: u64,
}

/// What happened to one packet, reported back to its source's shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Outcome {
    Delivered {
        bytes: u64,
    },
    DroppedCapacity,
    DroppedPolicy,
    /// Tail-dropped at a switch's bounded upcall queue.
    DroppedUpcall,
}

/// A delivery/drop report travelling back to the source's home shard.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Receipt {
    /// Global source index.
    pub source: usize,
    pub outcome: Outcome,
}

/// Everything a shard receives at the start of a tick.
#[derive(Debug, Default)]
pub(crate) struct Inbound {
    /// Cross-host packets forwarded during the previous tick, already
    /// merged in sending-shard order.
    pub packets: Vec<NodePacket<usize>>,
    /// Outcome reports for this shard's sources, merged the same way.
    pub receipts: Vec<Receipt>,
}

/// Everything a shard emits during a tick.
#[derive(Debug)]
pub(crate) struct ShardOutput {
    /// Outgoing packets, indexed by destination shard.
    pub packets: Vec<Vec<NodePacket<usize>>>,
    /// Outgoing receipts, indexed by the source's home shard.
    pub receipts: Vec<Vec<Receipt>>,
}

impl ShardOutput {
    fn new(shards: usize) -> Self {
        ShardOutput {
            packets: (0..shards).map(|_| Vec::new()).collect(),
            receipts: (0..shards).map(|_| Vec::new()).collect(),
        }
    }
}

/// A topology/routing change applied at a tick boundary (pod
/// migration). Every shard applies its command list before processing,
/// so the fleet's view changes atomically between epochs.
#[derive(Debug, Clone)]
pub(crate) enum HostCmd {
    /// Point this shard's routing map for `ip` at `shard`.
    Route { ip: u32, shard: usize },
    /// The pod left this host: traffic to `ip` now exits the uplink.
    DetachToUplink { ip: u32 },
    /// The pod arrived on this host at `vport`, with its ACL (if any).
    AttachLocal {
        ip: u32,
        vport: u32,
        acl: Option<FlowTable>,
    },
}

/// One local traffic source and its accounting.
pub(crate) struct FleetSlot {
    pub global: usize,
    pub source: Box<dyn TrafficSource + Send>,
    pub label: String,
    tick_delivered: u64,
    tick_dropped: u64,
    window_delivered_bytes: u64,
    window_generated_bytes: u64,
    pub total_generated: u64,
    pub total_delivered: u64,
    pub total_dropped_capacity: u64,
    pub total_dropped_policy: u64,
    pub total_dropped_upcall: u64,
    pub throughput: TimeSeries,
    pub offered: TimeSeries,
}

impl FleetSlot {
    pub fn new(global: usize, source: Box<dyn TrafficSource + Send>) -> Self {
        let label = format!("{}#{global}", source.label());
        FleetSlot {
            global,
            source,
            throughput: TimeSeries::new(&format!("{label}_bps")),
            offered: TimeSeries::new(&format!("{label}_offered_bps")),
            label,
            tick_delivered: 0,
            tick_dropped: 0,
            window_delivered_bytes: 0,
            window_generated_bytes: 0,
            total_generated: 0,
            total_delivered: 0,
            total_dropped_capacity: 0,
            total_dropped_policy: 0,
            total_dropped_upcall: 0,
        }
    }

    fn apply(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Delivered { bytes } => {
                self.tick_delivered += 1;
                self.total_delivered += 1;
                self.window_delivered_bytes += bytes;
            }
            Outcome::DroppedCapacity => {
                self.tick_dropped += 1;
                self.total_dropped_capacity += 1;
            }
            Outcome::DroppedPolicy => {
                self.total_dropped_policy += 1;
            }
            Outcome::DroppedUpcall => {
                self.tick_dropped += 1;
                self.total_dropped_upcall += 1;
            }
        }
    }
}

/// One host of the fleet: switch, queue, local sources, routing view.
pub(crate) struct HostShard {
    pub id: usize,
    pub node: NodeCell<usize>,
    /// Destination IP → home shard, this shard's copy.
    // audit: allow(determinism) -- per-packet get() on the hot path; migration updates are keyed inserts, never iterated
    pub routes: HashMap<u32, usize>,
    /// Global source index → home shard (immutable, fleet-wide).
    pub source_home: Vec<usize>,
    pub slots: Vec<FleetSlot>,
    /// Global source index → local slot index.
    // audit: allow(determinism) -- keyed get() only, never iterated
    slot_index: HashMap<usize, usize>,
    pub masks: TimeSeries,
    pub megaflows: TimeSeries,
    pub cpu: TimeSeries,
    pub handler_cps: TimeSeries,
    /// Control-plane CPU, cycles/second — the flush-storm share of the
    /// datapath budget, sampled per window.
    pub control_cps: TimeSeries,
    /// Cumulative control-plane policy updates applied to this host's
    /// switch, sampled per window — the policy-churn timeline.
    pub policy_updates: TimeSeries,
    /// Ticks this shard actually executed (the event-driven engine
    /// skips provably-idle ones; the stepped engine executes all).
    pub ticks_stepped: u64,
    /// Event-bearing causes observed across executed ticks: inbound
    /// epochs, topology commands, sample boundaries and defense
    /// intervals. Depends only on shard-local state and the global
    /// command/traffic program, so it is worker-count invariant.
    pub events_processed: u64,
    genbuf: Vec<GenPacket>,
}

impl HostShard {
    pub fn new(
        id: usize,
        node: NodeCell<usize>,
        // audit: allow(determinism) -- ownership transfer of the waived lookup table above
        routes: HashMap<u32, usize>,
        source_home: Vec<usize>,
        slots: Vec<FleetSlot>,
    ) -> Self {
        let slot_index = slots
            .iter()
            .enumerate()
            .map(|(i, s)| (s.global, i))
            .collect();
        HostShard {
            masks: TimeSeries::new(&format!("host{id}_masks")),
            megaflows: TimeSeries::new(&format!("host{id}_megaflows")),
            cpu: TimeSeries::new(&format!("host{id}_cpu")),
            handler_cps: TimeSeries::new(&format!("host{id}_handler_cps")),
            control_cps: TimeSeries::new(&format!("host{id}_control_cps")),
            policy_updates: TimeSeries::new(&format!("host{id}_policy_updates")),
            id,
            node,
            routes,
            source_home,
            slots,
            slot_index,
            ticks_stepped: 0,
            events_processed: 0,
            genbuf: Vec::new(),
        }
    }

    /// Applies `outcome` for `source` — directly when the source lives
    /// here, as an outgoing receipt otherwise.
    fn settle(&mut self, source: usize, outcome: Outcome, out: &mut ShardOutput) {
        let home = self.source_home[source];
        if home == self.id {
            let local = self.slot_index[&source];
            self.slots[local].apply(outcome);
        } else {
            out.receipts[home].push(Receipt { source, outcome });
        }
    }

    /// Runs one epoch: commands → receipts → remote arrivals →
    /// generation → switch processing → feedback → sampling.
    pub fn tick(
        &mut self,
        tick: u64,
        now: SimTime,
        next: SimTime,
        ctx: &TickCtx,
        inbound: Inbound,
        cmds: &[HostCmd],
    ) -> ShardOutput {
        let mut out = ShardOutput::new(ctx.shards);

        self.ticks_stepped += 1;
        self.events_processed += cmds.len() as u64;
        if !inbound.packets.is_empty() || !inbound.receipts.is_empty() {
            self.events_processed += 1;
        }
        if (tick + 1).is_multiple_of(ctx.sample_every_ticks) {
            self.events_processed += 1;
        }
        if self.node.has_defense() && (tick + 1).is_multiple_of(ctx.defense_every_ticks) {
            self.events_processed += 1;
        }

        // 0. Topology changes for this epoch.
        for cmd in cmds {
            match cmd {
                HostCmd::Route { ip, shard } => {
                    self.routes.insert(*ip, *shard);
                }
                HostCmd::DetachToUplink { ip } => {
                    // attach_pod preserves an installed slow path on
                    // re-attach; the departed pod's ACL must not keep
                    // filtering at this host's uplink hop — enforcement
                    // moves with the pod.
                    self.node.backend_mut().attach_pod(*ip, Port::Uplink.raw());
                    self.node.backend_mut().remove_acl(*ip);
                }
                HostCmd::AttachLocal { ip, vport, acl } => {
                    self.node.backend_mut().attach_pod(*ip, *vport);
                    if let Some(table) = acl {
                        self.node.backend_mut().install_acl(*ip, table.clone());
                    }
                }
            }
        }

        // 1. Receipts for our sources from last tick's remote outcomes.
        for r in inbound.receipts {
            let local = self.slot_index[&r.source];
            self.slots[local].apply(r.outcome);
        }

        // 2. Cross-host arrivals join the ingress queue ahead of fresh
        //    generation (they were produced a tick earlier) — the same
        //    order the two-node engine's fabric hand-off yields.
        for pkt in inbound.packets {
            let source = pkt.source;
            if !self.node.enqueue(pkt, ctx.queue_capacity) {
                self.settle(source, Outcome::DroppedCapacity, &mut out);
            }
        }

        // 3. Local generation.
        for li in 0..self.slots.len() {
            let slot = &mut self.slots[li];
            self.genbuf.clear();
            slot.source.generate(now, next, &mut self.genbuf);
            slot.total_generated += self.genbuf.len() as u64;
            for p in &self.genbuf {
                slot.window_generated_bytes += p.bytes as u64;
                let accepted = self.node.enqueue(
                    NodePacket {
                        key: p.key,
                        bytes: p.bytes,
                        source: slot.global,
                    },
                    ctx.queue_capacity,
                );
                if !accepted {
                    slot.tick_dropped += 1;
                    slot.total_dropped_capacity += 1;
                }
            }
        }

        // 4. Switch processing under the cycle budget; route outcomes.
        let mut link_budget = ctx.link_bytes_per_tick;
        let mut settlements: Vec<(usize, Outcome)> = Vec::new();
        let routes = &self.routes;
        self.node.step(now, ctx.cycles_per_tick, |pkt, routing| {
            match routing {
                Routing::Uplink => match routes.get(&pkt.key.ip_dst).copied() {
                    Some(dst) => {
                        if link_budget >= pkt.bytes as f64 {
                            link_budget -= pkt.bytes as f64;
                            out.packets[dst].push(pkt);
                        } else {
                            settlements.push((pkt.source, Outcome::DroppedCapacity));
                        }
                    }
                    // Uplink with no hosting shard — policy drop, as in
                    // the two-node engine.
                    None => settlements.push((pkt.source, Outcome::DroppedPolicy)),
                },
                Routing::Local(_vport) => settlements.push((
                    pkt.source,
                    Outcome::Delivered {
                        bytes: pkt.bytes as u64,
                    },
                )),
                Routing::Denied => settlements.push((pkt.source, Outcome::DroppedPolicy)),
                Routing::UpcallDropped => settlements.push((pkt.source, Outcome::DroppedUpcall)),
            }
        });
        for (source, outcome) in settlements {
            self.settle(source, outcome, &mut out);
        }
        self.node.revalidate(next);
        // 4.5 Shard-local defense control loop (no-op when no
        //     controller is attached). Strictly local state: worker
        //     count cannot influence what a controller observes.
        if (tick + 1).is_multiple_of(ctx.defense_every_ticks) {
            self.node.run_defense(next);
        }

        // 5. Feedback to local sources.
        for slot in self.slots.iter_mut() {
            slot.source.feedback(slot.tick_delivered, slot.tick_dropped);
            slot.tick_delivered = 0;
            slot.tick_dropped = 0;
        }

        // 6. Sampling at window boundaries.
        if (tick + 1).is_multiple_of(ctx.sample_every_ticks) {
            let t = next;
            for slot in self.slots.iter_mut() {
                slot.throughput.push(
                    t,
                    slot.window_delivered_bytes as f64 * 8.0 / ctx.window_secs,
                );
                slot.offered.push(
                    t,
                    slot.window_generated_bytes as f64 * 8.0 / ctx.window_secs,
                );
                slot.window_delivered_bytes = 0;
                slot.window_generated_bytes = 0;
            }
            self.masks.push(t, self.node.backend().mask_count() as f64);
            self.megaflows
                .push(t, self.node.backend().megaflow_count() as f64);
            let budget_window = ctx.cpu_cycles_per_sec as f64 * ctx.window_secs;
            self.control_cps.push(
                t,
                self.node.take_window_control_cycles() as f64 / ctx.window_secs,
            );
            self.cpu
                .push(t, self.node.take_window_cycles() as f64 / budget_window);
            self.handler_cps.push(
                t,
                self.node.take_window_handler_cycles() as f64 / ctx.window_secs,
            );
            self.policy_updates
                .push(t, self.node.backend().stats().policy_updates as f64);
        }

        out
    }

    /// The earliest tick ≥ `from_tick` at which this shard must run
    /// again, assuming nothing arrives from other shards in between
    /// (arrivals and commands are folded in by the engine). `u64::MAX`
    /// means "never on its own". Each event source maps to the tick
    /// grid the way the tick loop consumes it:
    ///
    /// * carried work (queued packets, parked upcalls, cycle debt) and
    ///   stall windows pin the shard busy at `from_tick`;
    /// * scheduled events (control-plane applies, reliable-layer
    ///   timers, fault starts) are polled against tick-*start* `now`,
    ///   so an event at `T` fires on tick `⌈T/tick_ns⌉`;
    /// * backend background deadlines (revalidator/aging sweeps) are
    ///   polled against tick-*end* `next`, so they fire one tick
    ///   earlier: `⌈T/tick_ns⌉ − 1`;
    /// * a source emits (or first mutates) at `T` during the tick
    ///   whose window covers it: `⌊T/tick_ns⌋`;
    /// * defense controllers run on their configured tick grid.
    ///
    /// Sample boundaries are global and handled by the engine, not
    /// here.
    pub(crate) fn next_wake(&self, from_tick: u64, ctx: &TickCtx, tick_ns: u64) -> u64 {
        if !self.node.quiet() {
            return from_tick;
        }
        let from = SimTime::from_nanos(from_tick.saturating_mul(tick_ns));
        let mut wake = u64::MAX;
        if let Some(t) = self.node.next_scheduled_event(from) {
            wake = wake.min(t.as_nanos().div_ceil(tick_ns));
        }
        if let Some(t) = self.node.next_background_event(from) {
            wake = wake.min(t.as_nanos().div_ceil(tick_ns).saturating_sub(1));
        }
        for slot in &self.slots {
            if wake <= from_tick {
                break;
            }
            let t = slot.source.next_activity(from);
            wake = wake.min(t.as_nanos() / tick_ns);
        }
        if self.node.has_defense() {
            let r = from_tick % ctx.defense_every_ticks;
            wake = wake.min(from_tick + (ctx.defense_every_ticks - 1 - r));
        }
        wake.max(from_tick)
    }

    pub fn stats(&self) -> SwitchStats {
        self.node.backend().stats()
    }
}
