//! Fleet-wide results: per-source and per-host series, totals, and the
//! blast-radius metrics the multi-tenant threat model is about.

use pi_core::SimTime;
use pi_datapath::{SwitchStats, UpcallStats};
use pi_detect::{DefenseReport, MaskAttribution};
use pi_fault::NodeFaultReport;
use pi_metrics::{degradation_ratio, sum_series, TimeSeries};
use pi_sim::SourceTotals;
use pi_trace::{TraceConfig, TraceEvent, TraceReport};

use crate::shard::HostShard;

pub use pi_sim::EngineStats;

/// Per-worker self-profiling of the event-driven core: what the
/// parallel harness did to coordinate the run. Unlike every other
/// report field these numbers are **not** worker-count invariant —
/// they describe the harness (null messages, heap churn), not the
/// simulated fleet — so they are quarantined here and must never be
/// fed into determinism comparisons. All zero under the tick-stepped
/// engine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineProfile {
    /// Worker index.
    pub worker: usize,
    /// Flushes sent to peers (including pure null messages).
    pub flushes: u64,
    /// Flushes that carried no deliveries — pure CMB null messages,
    /// only a lookahead promise.
    pub null_messages: u64,
    /// Cross-worker delivery items carried by those flushes.
    pub flush_items: u64,
    /// Wake-heap pushes (shard deadlines scheduled or re-scheduled).
    pub wake_pushes: u64,
    /// Wake-heap entries discarded as stale (lazy invalidation churn).
    pub wake_stale_pops: u64,
    /// The first [`FLUSH_LOG_CAP`] flush exchanges as
    /// [`pi_trace::TraceEventKind::FlushExchange`] records (terminal
    /// promises excluded), for ad-hoc export alongside the canonical
    /// trace.
    pub flush_log: Vec<TraceEvent>,
}

/// Cap on [`EngineProfile::flush_log`] entries per worker.
pub const FLUSH_LOG_CAP: usize = 256;

/// Everything a cluster run produces.
#[derive(Debug)]
pub struct FleetReport {
    /// Hosts simulated.
    pub hosts: usize,
    /// Worker threads actually used (the configured count is clamped to
    /// the host count).
    pub workers: usize,
    /// Per-source delivered throughput, bits/second (global source
    /// order).
    pub throughput_bps: Vec<TimeSeries>,
    /// Per-source offered load, bits/second.
    pub offered_bps: Vec<TimeSeries>,
    /// Per-host distinct megaflow mask count.
    pub masks: Vec<TimeSeries>,
    /// Per-host megaflow entry count.
    pub megaflows: Vec<TimeSeries>,
    /// Per-host CPU utilisation of the datapath budget, 0–1.
    pub cpu_util: Vec<TimeSeries>,
    /// Per-host slow-path handler CPU, cycles/second (zero under the
    /// inline pipeline).
    pub handler_cps: Vec<TimeSeries>,
    /// Per-host control-plane CPU, cycles/second — the flush-storm
    /// share of the datapath budget, sampled per window. Flat zero for
    /// hosts with no control plane attached.
    pub control_cps: Vec<TimeSeries>,
    /// Per-host policy-update timeline: cumulative control-plane
    /// updates applied to the host's switch, sampled per window. Flat
    /// at the build-time setup count for hosts with no runtime churn;
    /// a policy-flap attack shows up as a steady ramp.
    pub policy_updates: Vec<TimeSeries>,
    /// Final switch statistics per host.
    pub switch_stats: Vec<SwitchStats>,
    /// Final upcall-pipeline statistics per host (all zero under
    /// [`pi_datapath::PipelineMode::Inline`]).
    pub upcall_stats: Vec<UpcallStats>,
    /// Per-source totals (global source order).
    pub source_totals: Vec<SourceTotals>,
    /// Per-host defense-controller reports, `None` for undefended
    /// hosts.
    pub defense: Vec<Option<DefenseReport>>,
    /// Per-host fault/recovery reports, `None` for hosts with neither
    /// a fault schedule nor a reliable control plane attached.
    pub faults: Vec<Option<NodeFaultReport>>,
    /// Final per-destination mask attribution per host — the offender
    /// list, assembled once so benches never re-walk megaflow caches.
    pub attribution: Vec<Vec<MaskAttribution>>,
    /// Executed/skipped tick accounting for the run.
    pub engine: EngineStats,
    /// Per-worker harness profiling (not worker-count invariant; see
    /// [`EngineProfile`]).
    pub profiles: Vec<EngineProfile>,
    /// The merged structured trace (empty unless
    /// [`pi_sim::SimConfig::trace`] enabled tracing). Canonical merge
    /// order `(at_ns, host, seq)` — bit-identical for every worker
    /// count.
    pub trace: TraceReport,
}

/// How far one injected policy reaches: which co-located tenants and
/// hosts degrade.
#[derive(Debug, Clone, PartialEq)]
pub struct BlastRadius {
    /// Retained-throughput ratio (after/before the attack start) per
    /// probed source, `None` when the source offered nothing before.
    pub ratios: Vec<(usize, Option<f64>)>,
    /// Probed sources whose ratio fell below the degradation threshold.
    pub degraded_sources: Vec<usize>,
    /// Hosts whose megaflow mask count exceeded the mask threshold
    /// after the attack start (the attack's direct footprint).
    pub affected_hosts: Vec<usize>,
    /// Upcall-queue tail drops per host (host index, drops), listing
    /// only hosts with a nonzero count — the handler-saturation
    /// footprint of the attack, visible even when throughput holds up.
    pub upcall_drops: Vec<(usize, u64)>,
    /// Control-plane churn per host (host index, effective cache
    /// flushes), listing only hosts whose switch flushed at least once
    /// — the policy-flap attack's footprint: a host can be collapsing
    /// under flush storms while receiving zero attack packets.
    pub policy_churn: Vec<(usize, u64)>,
    /// Detection timeline: defended hosts whose controller raised at
    /// least one detection, with the first detection time.
    pub detections: Vec<(usize, SimTime)>,
    /// Mitigation timeline: defended hosts that escalated to
    /// Mitigating, with the time mitigations were first applied.
    pub mitigations: Vec<(usize, SimTime)>,
    /// Injected fault events per host (host index, count): crashes,
    /// stall ticks, control-channel drops/duplicates and deliveries
    /// lost to switch downtime. Only hosts with a nonzero count.
    pub fault_events: Vec<(usize, u64)>,
    /// Ticks each host spent between a crash and reconciliation
    /// convergence (host index, ticks), summed over recovery episodes.
    /// Only hosts that actually recovered at least once.
    pub recovery_ticks: Vec<(usize, u64)>,
    /// Control-plane retransmissions per host (host index, count) —
    /// the price of at-least-once delivery over a faulty channel.
    /// Only hosts with a nonzero count.
    pub retries: Vec<(usize, u64)>,
}

impl BlastRadius {
    /// Degraded fraction of the probed sources.
    pub fn degraded_fraction(&self) -> f64 {
        if self.ratios.is_empty() {
            0.0
        } else {
            self.degraded_sources.len() as f64 / self.ratios.len() as f64
        }
    }
}

impl FleetReport {
    pub(crate) fn assemble(
        workers: usize,
        tick: SimTime,
        total_ticks: u64,
        shards: Vec<HostShard>,
        trace_cfg: TraceConfig,
        profiles: Vec<EngineProfile>,
    ) -> FleetReport {
        let hosts = shards.len();
        let mut engine = EngineStats::default();
        for shard in &shards {
            engine.shard_ticks_stepped += shard.ticks_stepped;
            engine.events_processed += shard.events_processed;
        }
        engine.shard_ticks_skipped = (hosts as u64 * total_ticks) - engine.shard_ticks_stepped;
        let tracers: Vec<_> = shards.iter().map(|s| s.node.tracer()).collect();
        let trace = TraceReport::collect(trace_cfg, &tracers);
        let n_sources = shards.iter().map(|s| s.slots.len()).sum();
        let mut throughput: Vec<Option<TimeSeries>> = (0..n_sources).map(|_| None).collect();
        let mut offered: Vec<Option<TimeSeries>> = (0..n_sources).map(|_| None).collect();
        let mut totals: Vec<Option<SourceTotals>> = (0..n_sources).map(|_| None).collect();
        let mut masks = Vec::with_capacity(hosts);
        let mut megaflows = Vec::with_capacity(hosts);
        let mut cpu = Vec::with_capacity(hosts);
        let mut handler_cps = Vec::with_capacity(hosts);
        let mut control_cps = Vec::with_capacity(hosts);
        let mut policy_updates = Vec::with_capacity(hosts);
        let mut stats = Vec::with_capacity(hosts);
        let mut upcall = Vec::with_capacity(hosts);
        let mut defense = Vec::with_capacity(hosts);
        let mut attribution = Vec::with_capacity(hosts);
        let mut faults = Vec::with_capacity(hosts);
        for mut shard in shards {
            stats.push(shard.stats());
            faults.push(shard.node.fault_report(tick));
            upcall.push(shard.node.backend().upcall_stats());
            attribution.push(shard.node.backend().attribution());
            defense.push(shard.node.take_defense_report());
            masks.push(shard.masks);
            megaflows.push(shard.megaflows);
            cpu.push(shard.cpu);
            handler_cps.push(shard.handler_cps);
            control_cps.push(shard.control_cps);
            policy_updates.push(shard.policy_updates);
            for slot in shard.slots {
                let g = slot.global;
                throughput[g] = Some(slot.throughput);
                offered[g] = Some(slot.offered);
                totals[g] = Some(SourceTotals {
                    label: slot.label,
                    generated: slot.total_generated,
                    delivered: slot.total_delivered,
                    dropped_capacity: slot.total_dropped_capacity,
                    dropped_policy: slot.total_dropped_policy,
                    dropped_upcall: slot.total_dropped_upcall,
                });
            }
        }
        FleetReport {
            hosts,
            workers,
            throughput_bps: throughput.into_iter().map(|s| s.expect("source")).collect(),
            offered_bps: offered.into_iter().map(|s| s.expect("source")).collect(),
            masks,
            megaflows,
            cpu_util: cpu,
            handler_cps,
            control_cps,
            policy_updates,
            switch_stats: stats,
            upcall_stats: upcall,
            source_totals: totals.into_iter().map(|t| t.expect("source")).collect(),
            defense,
            faults,
            attribution,
            engine,
            profiles,
            trace,
        }
    }

    /// Offenders on `host`: destinations whose final mask count
    /// exceeds `threshold`.
    pub fn offenders(&self, host: usize, threshold: usize) -> Vec<MaskAttribution> {
        pi_detect::offenders(&self.attribution[host], threshold)
    }

    /// Total packets the fleet's switches processed — the work metric
    /// the scaling bench divides by wall time.
    pub fn total_switch_packets(&self) -> u64 {
        self.switch_stats.iter().map(|s| s.packets).sum()
    }

    /// Fleet-wide switch counters (per-host stats summed) — the benches
    /// derive avg probes/packet and the EMC hit rate from this so perf
    /// regressions are attributable to a pipeline level.
    pub fn total_switch_stats(&self) -> SwitchStats {
        let mut total = SwitchStats::default();
        for s in &self.switch_stats {
            // Exhaustive destructuring (no `..`): adding a field to
            // SwitchStats must fail to compile here rather than be
            // silently dropped from the fleet aggregate.
            let SwitchStats {
                packets,
                microflow_hits,
                megaflow_hits,
                upcalls,
                policy_drops,
                cycles,
                subtable_probes,
                policy_updates,
                cache_flushes,
                flushed_megaflows,
                control_cycles,
            } = *s;
            total.packets += packets;
            total.microflow_hits += microflow_hits;
            total.megaflow_hits += megaflow_hits;
            total.upcalls += upcalls;
            total.policy_drops += policy_drops;
            total.cycles += cycles;
            total.subtable_probes += subtable_probes;
            total.policy_updates += policy_updates;
            total.cache_flushes += cache_flushes;
            total.flushed_megaflows += flushed_megaflows;
            total.control_cycles += control_cycles;
        }
        total
    }

    /// Aggregate delivered throughput of the given sources.
    pub fn aggregate_throughput(&self, sources: &[usize], name: &str) -> TimeSeries {
        let picked: Vec<&TimeSeries> = sources.iter().map(|&i| &self.throughput_bps[i]).collect();
        sum_series(name, &picked)
    }

    /// Computes the blast radius of an attack starting at `attack_start`:
    /// each probed source is degraded when it retains less than
    /// `degraded_below` (e.g. 0.5) of its pre-attack throughput; a host
    /// is affected when its mean mask count after the start exceeds
    /// `mask_threshold`.
    pub fn blast_radius(
        &self,
        attack_start: SimTime,
        probe_sources: &[usize],
        degraded_below: f64,
        mask_threshold: f64,
    ) -> BlastRadius {
        let ratios: Vec<(usize, Option<f64>)> = probe_sources
            .iter()
            .map(|&i| (i, degradation_ratio(&self.throughput_bps[i], attack_start)))
            .collect();
        let degraded_sources = ratios
            .iter()
            .filter(|(_, r)| matches!(r, Some(r) if *r < degraded_below))
            .map(|(i, _)| *i)
            .collect();
        let affected_hosts = self
            .masks
            .iter()
            .enumerate()
            .filter(|(_, m)| {
                let Some((end, _)) = m.last() else {
                    return false;
                };
                m.mean_between(attack_start, end + SimTime::from_nanos(1)) > mask_threshold
            })
            .map(|(i, _)| i)
            .collect();
        let upcall_drops = self
            .upcall_stats
            .iter()
            .enumerate()
            .filter(|(_, u)| u.queue_drops > 0)
            .map(|(i, u)| (i, u.queue_drops))
            .collect();
        let policy_churn = self
            .switch_stats
            .iter()
            .enumerate()
            .filter(|(_, s)| s.cache_flushes > 0)
            .map(|(i, s)| (i, s.cache_flushes))
            .collect();
        let detections = self
            .defense
            .iter()
            .enumerate()
            .filter_map(|(i, d)| Some((i, d.as_ref()?.first_detection()?)))
            .collect();
        let mitigations = self
            .defense
            .iter()
            .enumerate()
            .filter_map(|(i, d)| Some((i, d.as_ref()?.first_mitigation()?)))
            .collect();
        let fault_events = self
            .faults
            .iter()
            .enumerate()
            .filter_map(|(i, f)| {
                let events = f.as_ref()?.fault_events();
                (events > 0).then_some((i, events))
            })
            .collect();
        let recovery_ticks = self
            .faults
            .iter()
            .enumerate()
            .filter_map(|(i, f)| {
                let ticks = f.as_ref()?.recovery_ticks;
                (ticks > 0).then_some((i, ticks))
            })
            .collect();
        let retries = self
            .faults
            .iter()
            .enumerate()
            .filter_map(|(i, f)| {
                let retries = f.as_ref()?.channel.retries;
                (retries > 0).then_some((i, retries))
            })
            .collect();
        BlastRadius {
            ratios,
            degraded_sources,
            affected_hosts,
            upcall_drops,
            policy_churn,
            detections,
            mitigations,
            fault_events,
            recovery_ticks,
            retries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_fraction_handles_empty() {
        let b = BlastRadius {
            ratios: vec![],
            degraded_sources: vec![],
            affected_hosts: vec![],
            upcall_drops: vec![],
            policy_churn: vec![],
            detections: vec![],
            mitigations: vec![],
            fault_events: vec![],
            recovery_ticks: vec![],
            retries: vec![],
        };
        assert_eq!(b.degraded_fraction(), 0.0);
    }
}
