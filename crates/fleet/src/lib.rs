//! # pi-fleet — sharded multi-host cluster simulation
//!
//! The paper demonstrates policy injection on a two-node testbed
//! ([`pi_sim`]); the real threat model is a multi-tenant cloud where one
//! attacker degrades many co-located tenants across a fleet of hosts.
//! This crate scales the same physics out: every host is a **shard**
//! owning its [`pi_datapath::VSwitch`], traffic sources and per-tenant
//! accounting; shards are stepped by a pool of **worker threads**; and
//! cross-host packets travel through bounded channels under an
//! epoch-per-tick synchronizer (the conservative-time style of parallel
//! simulators like rustasim).
//!
//! Determinism is a hard guarantee, not an accident: all cross-shard
//! traffic is merged in sending-shard order at epoch boundaries, so a
//! run's results are **bit-identical for any worker count** — the
//! regression test pins a 4-host run at 1 vs 4 workers byte for byte.
//!
//! The pieces:
//!
//! * [`FleetBuilder`] / [`FleetSim`] — the sharded engine (per-host
//!   stepping is shared with `pi_sim` via [`pi_sim::NodeCell`]).
//! * [`ClusterBuilder`] — tenant placement (round-robin, bin-packed,
//!   adversarial co-location) on the [`pi_cms`] tenant/pod model, with
//!   policy injection through real CMS admission.
//! * [`FleetReport`] / [`BlastRadius`] — per-source and per-host time
//!   series aggregated into "how many tenants/hosts degrade per
//!   injected policy".
//! * [`scenario`] — the `fleet_colocation` and `fleet_migration`
//!   experiments; `pi_bench`'s `fleet_scaling` sweeps hosts × workers.

pub mod config;
pub mod engine;
pub mod placement;
pub mod report;
pub mod scenario;
mod shard;

pub use config::FleetConfig;
pub use engine::{FleetBuilder, FleetSim};
pub use pi_sim::{TraceConfig, TraceEvent, TraceEventKind, TraceReport};
pub use placement::ClusterBuilder;
pub use report::{BlastRadius, EngineProfile, EngineStats, FleetReport, FLUSH_LOG_CAP};
pub use scenario::{
    fleet_colocation, fleet_migration, fleet_sparse, ColocationHandles, ColocationParams,
    MigrationHandles, MigrationParams, SparseHandles, SparseParams,
};

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::{FlowKey, SimTime};
    use pi_datapath::DpConfig;
    use pi_sim::SimConfig;
    use pi_traffic::CbrSource;

    fn small_cfg(secs: u64, workers: usize) -> FleetConfig {
        FleetConfig {
            sim: SimConfig {
                duration: SimTime::from_secs(secs),
                ..SimConfig::default()
            },
            workers,
        }
    }

    fn ip(a: [u8; 4]) -> u32 {
        u32::from_be_bytes(a)
    }

    #[test]
    fn single_host_delivery_matches_two_node_engine_semantics() {
        let mut b = FleetBuilder::new(small_cfg(5, 1));
        let h0 = b.add_host(DpConfig::default());
        b.add_pod(h0, ip([10, 0, 0, 2]));
        let key = FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1000, 80);
        b.add_source(h0, Box::new(CbrSource::new(key, 1500, 1000.0)));
        let report = b.build().run();
        let totals = &report.source_totals[0];
        assert_eq!(totals.generated, 5_000);
        assert_eq!(totals.delivered, 5_000);
        assert_eq!(totals.dropped_capacity, 0);
        assert_eq!(totals.dropped_policy, 0);
        let mean = report.throughput_bps[0].mean();
        assert!((mean - 12e6).abs() / 12e6 < 0.01, "mean {mean}");
    }

    #[test]
    fn cross_host_delivery_over_the_fabric() {
        let mut b = FleetBuilder::new(small_cfg(3, 2));
        let h0 = b.add_host(DpConfig::default());
        let h1 = b.add_host(DpConfig::default());
        b.add_pod(h0, ip([10, 0, 0, 1]));
        b.add_pod(h1, ip([10, 1, 0, 1]));
        let key = FlowKey::tcp([10, 0, 0, 1], [10, 1, 0, 1], 1000, 80);
        b.add_source(h0, Box::new(CbrSource::new(key, 1500, 100.0)));
        let report = b.build().run();
        // One tick of fabric latency, one more for the receipt: the
        // tail of the stream may be in flight at the end of the run.
        let delivered = report.source_totals[0].delivered;
        assert!((298..=300).contains(&delivered), "delivered = {delivered}");
        assert!(report.switch_stats[0].packets >= 299);
        assert!(report.switch_stats[1].packets >= 298);
    }

    #[test]
    fn migration_moves_delivery_to_the_new_host() {
        let mut b = FleetBuilder::new(small_cfg(4, 2));
        let h0 = b.add_host(DpConfig::default());
        let h1 = b.add_host(DpConfig::default());
        let h2 = b.add_host(DpConfig::default());
        b.add_pod(h0, ip([10, 0, 0, 1])); // client
        b.add_pod(h1, ip([10, 1, 0, 1])); // server, will migrate to h2
        let key = FlowKey::tcp([10, 0, 0, 1], [10, 1, 0, 1], 1000, 80);
        b.add_source(h0, Box::new(CbrSource::new(key, 1500, 100.0)));
        b.schedule_migration(SimTime::from_secs(2), ip([10, 1, 0, 1]), h2);
        let report = b.build().run();
        let totals = &report.source_totals[0];
        // Nothing is lost across the migration epoch: in-flight packets
        // tunnel through the old host's uplink.
        assert!(totals.generated - totals.delivered <= 3, "{totals:?}");
        assert_eq!(totals.dropped_policy, 0);
        // The new host's switch did real delivery work after the move.
        assert!(report.switch_stats[2].packets >= 190, "h2 took over");
        let _ = h1;
    }

    #[test]
    fn shards_inherit_the_bounded_pipeline_and_report_upcall_drops() {
        use pi_attack::{AttackSchedule, AttackSpec, CovertSequence};
        use pi_datapath::{PipelineMode, UpcallPipelineConfig};
        use pi_traffic::ChurnSource;

        let run = |quota: Option<u32>, workers: usize| {
            let dp = DpConfig {
                flow_limit: 64,
                pipeline: PipelineMode::Bounded(UpcallPipelineConfig {
                    queue_capacity: 16,
                    handler_cycles_per_step: 200_000,
                    port_quota_per_step: quota,
                }),
                ..DpConfig::default()
            };
            let mut b = FleetBuilder::new(small_cfg(4, workers));
            let h0 = b.add_host(dp.clone());
            let h1 = b.add_host(dp);
            b.add_pod(h0, ip([10, 0, 0, 2])); // victim service pod
            b.add_pod(h1, ip([10, 1, 0, 2])); // attacker client pod
                                              // Victim churn: fresh connections from host 1 over the
                                              // fabric, starting after the flood has filled host 0's
                                              // flow limit (so its flows keep upcalling).
            b.add_source(
                h1,
                Box::new(
                    ChurnSource::new(ip([10, 0, 10, 0]), ip([10, 0, 0, 2]), 80, 64, 2_000.0)
                        .starting_at(SimTime::from_secs(1))
                        .named("victim"),
                ),
            );
            // Attacker upcall flood injected directly at host 0.
            let spec = AttackSpec::masks_512(pi_cms::PolicyDialect::Kubernetes);
            let schedule = AttackSchedule::new(
                CovertSequence::new(spec.build_target(ip([10, 1, 0, 2]))),
                10e6, // ~19.5 kpps of 64-B frames
                SimTime::ZERO,
            )
            .upcall_flood();
            b.add_source(h0, Box::new(schedule));
            b.build().run()
        };

        let unfair = run(None, 2);
        // The flood saturates host 0's handlers: the victim's fresh
        // flows tail-drop at the upcall queue and the blast radius
        // names the host.
        assert!(
            unfair.source_totals[0].dropped_upcall > 0,
            "victim upcall drops: {:?}",
            unfair.source_totals[0]
        );
        // Host 1 only upcalls to set up the churn stream's uplink
        // megaflow — its slow path is otherwise idle.
        assert!(unfair.upcall_stats[1].enqueued < 10);
        assert_eq!(unfair.upcall_stats[1].queue_drops, 0);
        let blast = unfair.blast_radius(SimTime::from_secs(1), &[0], 0.5, 1e9);
        assert_eq!(blast.upcall_drops.len(), 1);
        assert_eq!(blast.upcall_drops[0].0, 0, "host 0 carries the drops");

        // The per-port fair-share quota restores the victim.
        let fair = run(Some(4), 2);
        assert_eq!(
            fair.source_totals[0].dropped_upcall, 0,
            "quota must restore the victim: {:?}",
            fair.source_totals[0]
        );

        // Determinism across worker counts holds for the pipeline too.
        let single = run(None, 1);
        assert_eq!(single.source_totals, unfair.source_totals);
        assert_eq!(single.upcall_stats, unfair.upcall_stats);
    }

    #[test]
    fn shard_local_controllers_detect_and_mitigate_deterministically() {
        use pi_attack::{AttackSchedule, AttackSpec, CovertSequence};
        use pi_datapath::{PipelineMode, UpcallPipelineConfig};
        use pi_detect::DefenseController;
        use pi_traffic::ChurnSource;

        let run = |workers: usize| {
            let dp = DpConfig {
                flow_limit: 64,
                pipeline: PipelineMode::Bounded(UpcallPipelineConfig {
                    queue_capacity: 16,
                    // ~12 upcalls/step: the controller's default quota
                    // (8) must leave handler headroom for the victim —
                    // a quota above the whole budget protects nobody.
                    handler_cycles_per_step: 400_000,
                    port_quota_per_step: None,
                }),
                ..DpConfig::default()
            };
            let mut b = FleetBuilder::new(small_cfg(5, workers));
            let h0 = b.add_host(dp.clone());
            let h1 = b.add_host(dp);
            b.add_pod(h0, ip([10, 0, 0, 2])); // victim service pod
            b.add_pod(h1, ip([10, 1, 0, 2])); // attacker client pod
            b.add_source(
                h1,
                Box::new(
                    ChurnSource::new(ip([10, 0, 10, 0]), ip([10, 0, 0, 2]), 80, 64, 2_000.0)
                        .starting_at(SimTime::from_secs(2))
                        .named("victim"),
                ),
            );
            // Flood at host 0 from t = 1 s (1 s of benign warm-up for
            // the host-0 controller's baselines).
            let spec = AttackSpec::masks_512(pi_cms::PolicyDialect::Kubernetes);
            b.add_source(
                h0,
                Box::new(
                    AttackSchedule::new(
                        CovertSequence::new(spec.build_target(ip([10, 1, 0, 2]))),
                        10e6,
                        SimTime::from_secs(1),
                    )
                    .upcall_flood(),
                ),
            );
            // Controllers on both hosts; host 1 sees nothing.
            b.attach_defense(h0, DefenseController::with_defaults());
            b.attach_defense(h1, DefenseController::with_defaults());
            b.build().run()
        };

        let report = run(2);
        let d0 = report.defense[0].as_ref().expect("host 0 defended");
        let d1 = report.defense[1].as_ref().expect("host 1 defended");
        assert!(d0.activations >= 1, "host 0 must mitigate: {d0:?}");
        assert_eq!(d1.activations, 0, "host 1 stays quiet");
        assert!(d1.detections.is_empty());
        // The blast radius names host 0's detection and mitigation.
        let blast = report.blast_radius(SimTime::from_secs(1), &[0], 0.5, 1e9);
        assert_eq!(blast.detections.len(), 1);
        assert_eq!(blast.detections[0].0, 0);
        assert!(blast.detections[0].1 >= SimTime::from_secs(1), "post-onset");
        assert_eq!(blast.mitigations.len(), 1);
        assert!(blast.mitigations[0].1 >= blast.detections[0].1);
        // The mitigated victim outperforms the unfair static baseline
        // of `shards_inherit_the_bounded_pipeline...`: most of its
        // post-mitigation connections complete.
        let victim = &report.source_totals[0];
        assert!(
            victim.delivered > victim.dropped_upcall,
            "quota restores the victim: {victim:?}"
        );
        // Determinism: controllers are shard-local, so worker count
        // changes nothing — totals, defense timelines, attribution.
        let single = run(1);
        assert_eq!(single.source_totals, report.source_totals);
        assert_eq!(single.defense, report.defense);
        assert_eq!(single.attribution, report.attribution);
    }

    #[test]
    fn fault_injection_preserves_worker_count_determinism_on_every_backend() {
        use pi_backend::BackendKind;
        use pi_cms::{
            Cidr, ControlPlaneProgram, IngressRule, NetworkPolicy, PolicyCompiler, Protocol,
        };
        use pi_fault::{ChannelFaultConfig, FaultSchedule, ReliabilityConfig};

        let run = |kind: BackendKind, workers: usize| {
            let dp = DpConfig {
                backend: kind,
                ..DpConfig::default()
            };
            let mut b = FleetBuilder::new(small_cfg(5, workers));
            let h0 = b.add_host(dp.clone());
            let h1 = b.add_host(dp);
            let victim = ip([10, 0, 0, 2]);
            b.add_pod(h0, victim);
            b.add_pod(h1, ip([10, 1, 0, 2]));
            // The victim whitelists its one legitimate client; the
            // prober below is outside the whitelist.
            let policy = NetworkPolicy {
                name: "victim-peers".into(),
                ingress: vec![IngressRule {
                    from: vec![Cidr::host([10, 1, 0, 2])],
                    ports: vec![(Protocol::Tcp, Some(80))],
                }],
            };
            let mut program = ControlPlaneProgram::default();
            program.install_acl(
                SimTime::from_millis(200),
                victim,
                PolicyCompiler.compile_k8s(&policy),
            );
            // At-least-once delivery over a hostile channel (loss,
            // duplication, jittered delays → reordering), plus a
            // mid-run crash that wipes the installed ACL.
            b.attach_reliable_control_plane(h0, program, ReliabilityConfig::default());
            b.attach_faults(
                h0,
                FaultSchedule::new()
                    .crash(SimTime::from_secs(2), SimTime::from_millis(100))
                    .channel(ChannelFaultConfig {
                        drop_p: 0.25,
                        dup_p: 0.25,
                        delay: SimTime::from_millis(2),
                        jitter: SimTime::from_millis(7),
                        seed: 0xDE7E12,
                    }),
            );
            let key = FlowKey::tcp([10, 1, 0, 2], [10, 0, 0, 2], 1000, 80);
            b.add_source(h1, Box::new(CbrSource::new(key, 400, 2_000.0)));
            let probe = FlowKey::tcp([10, 9, 0, 1], [10, 0, 0, 2], 40_000, 80);
            b.add_source(h1, Box::new(CbrSource::new(probe, 64, 500.0)));
            b.build().run()
        };

        for kind in [
            BackendKind::OvsCache,
            BackendKind::ExactHash,
            BackendKind::LpmTier,
            BackendKind::NicOffload,
        ] {
            let one = run(kind, 1);
            let many = run(kind, 2);
            // Totals, switch counters and the fault/recovery report
            // are bit-identical across worker counts: the fault plan,
            // channel RNG and reliable-delivery state are all
            // shard-local.
            assert_eq!(one.source_totals, many.source_totals, "{kind:?}");
            assert_eq!(one.switch_stats, many.switch_stats, "{kind:?}");
            assert_eq!(one.faults, many.faults, "{kind:?}");
            let f = one.faults[0].as_ref().expect("host 0 has faults");
            assert_eq!(f.crashes, 1, "{kind:?}");
            assert!(f.fault_events() >= 1, "{kind:?}: {f:?}");
            assert!(f.acls_lost >= 1, "{kind:?}: {f:?}");
            assert!(f.channel.applied >= 1, "{kind:?}: {f:?}");
            assert!(one.faults[1].is_none(), "host 1 runs fault-free");
            // The blast radius names host 0's faults.
            let blast = one.blast_radius(SimTime::from_secs(2), &[0], 0.5, 1e9);
            assert_eq!(blast.fault_events.len(), 1, "{kind:?}");
            assert_eq!(blast.fault_events[0].0, 0, "{kind:?}");
        }
    }

    /// A scenario exercising every event source at once: cross-host
    /// traffic, a delayed attack, a migration, a defended host, a
    /// crash + lossy control channel behind a reliable control plane —
    /// and one fully idle host the event engine should skip.
    fn rich_fleet(event: bool, workers: usize) -> FleetReport {
        use pi_attack::{AttackSchedule, AttackSpec, CovertSequence};
        use pi_cms::{
            Cidr, ControlPlaneProgram, IngressRule, NetworkPolicy, PolicyCompiler, Protocol,
        };
        use pi_detect::DefenseController;
        use pi_fault::{ChannelFaultConfig, FaultSchedule, ReliabilityConfig};

        let mut cfg = small_cfg(4, workers);
        cfg.sim.event_driven = event;
        let mut b = FleetBuilder::new(cfg);
        let h0 = b.add_host(DpConfig::default());
        let h1 = b.add_host(DpConfig::default());
        let h2 = b.add_host(DpConfig::default());
        let victim = ip([10, 0, 0, 2]);
        b.add_pod(h0, victim);
        b.add_pod(h1, ip([10, 1, 0, 2]));
        b.add_pod(h2, ip([10, 2, 0, 2])); // pod attached, host otherwise idle
        let policy = NetworkPolicy {
            name: "victim-peers".into(),
            ingress: vec![IngressRule {
                from: vec![Cidr::host([10, 1, 0, 2])],
                ports: vec![(Protocol::Tcp, Some(80))],
            }],
        };
        let mut program = ControlPlaneProgram::default();
        program.install_acl(
            SimTime::from_millis(200),
            victim,
            PolicyCompiler.compile_k8s(&policy),
        );
        b.attach_reliable_control_plane(h0, program, ReliabilityConfig::default());
        b.attach_faults(
            h0,
            FaultSchedule::new()
                .crash(SimTime::from_secs(2), SimTime::from_millis(100))
                .stall(SimTime::from_millis(2_500), SimTime::from_millis(5))
                .channel(ChannelFaultConfig {
                    drop_p: 0.25,
                    dup_p: 0.25,
                    delay: SimTime::from_millis(2),
                    jitter: SimTime::from_millis(7),
                    seed: 0xDE7E12,
                }),
        );
        b.attach_defense(h0, DefenseController::with_defaults());
        // Legitimate client, outside-whitelist prober, delayed attack.
        let key = FlowKey::tcp([10, 1, 0, 2], [10, 0, 0, 2], 1000, 80);
        b.add_source(h1, Box::new(CbrSource::new(key, 400, 2_000.0)));
        let probe = FlowKey::tcp([10, 9, 0, 1], [10, 0, 0, 2], 40_000, 80);
        b.add_source(h1, Box::new(CbrSource::new(probe, 64, 500.0)));
        let spec = AttackSpec::masks_512(pi_cms::PolicyDialect::Kubernetes);
        b.add_source(
            h0,
            Box::new(
                AttackSchedule::new(
                    CovertSequence::new(spec.build_target(ip([10, 1, 0, 2]))),
                    5e6,
                    SimTime::from_secs(1),
                )
                .upcall_flood(),
            ),
        );
        // The victim pod migrates mid-run to the idle host.
        b.schedule_migration(SimTime::from_secs(3), victim, h2);
        b.build().run()
    }

    fn assert_reports_equal(a: &FleetReport, b: &FleetReport, label: &str) {
        assert_eq!(a.source_totals, b.source_totals, "{label}: totals");
        assert_eq!(a.switch_stats, b.switch_stats, "{label}: switch stats");
        assert_eq!(a.upcall_stats, b.upcall_stats, "{label}: upcall stats");
        assert_eq!(a.faults, b.faults, "{label}: fault reports");
        assert_eq!(a.defense, b.defense, "{label}: defense reports");
        assert_eq!(a.attribution, b.attribution, "{label}: attribution");
        let series = |r: &FleetReport| {
            let mut all = Vec::new();
            for group in [
                &r.throughput_bps,
                &r.offered_bps,
                &r.masks,
                &r.megaflows,
                &r.cpu_util,
                &r.handler_cps,
                &r.policy_updates,
            ] {
                for s in group.iter() {
                    all.push(s.iter().collect::<Vec<_>>());
                }
            }
            all
        };
        assert_eq!(series(a), series(b), "{label}: timelines");
    }

    #[test]
    fn event_engine_matches_the_stepped_reference_bit_for_bit() {
        let ev = rich_fleet(true, 2);
        let st = rich_fleet(false, 2);
        assert_reports_equal(&ev, &st, "event vs stepped");
        // Both engines consume the same events; only the idle-tick
        // accounting differs.
        assert_eq!(ev.engine.events_processed, st.engine.events_processed);
        assert_eq!(st.engine.shard_ticks_skipped, 0, "stepped skips nothing");
        assert!(
            ev.engine.shard_ticks_skipped > 0,
            "the idle host must be skipped: {:?}",
            ev.engine
        );
    }

    #[test]
    fn worker_matrix_is_bit_identical_on_every_backend_with_faults() {
        use pi_backend::BackendKind;
        use pi_cms::{
            Cidr, ControlPlaneProgram, IngressRule, NetworkPolicy, PolicyCompiler, Protocol,
        };
        use pi_fault::{ChannelFaultConfig, FaultSchedule, ReliabilityConfig};

        let run = |kind: BackendKind, workers: usize| {
            let dp = DpConfig {
                backend: kind,
                ..DpConfig::default()
            };
            let mut b = FleetBuilder::new(small_cfg(3, workers));
            let h0 = b.add_host(dp.clone());
            let h1 = b.add_host(dp.clone());
            let h2 = b.add_host(dp.clone());
            let h3 = b.add_host(dp);
            let victim = ip([10, 0, 0, 2]);
            b.add_pod(h0, victim);
            b.add_pod(h1, ip([10, 1, 0, 2]));
            b.add_pod(h2, ip([10, 2, 0, 2]));
            b.add_pod(h3, ip([10, 3, 0, 2])); // idle host
            let policy = NetworkPolicy {
                name: "victim-peers".into(),
                ingress: vec![IngressRule {
                    from: vec![Cidr::host([10, 1, 0, 2])],
                    ports: vec![(Protocol::Tcp, Some(80))],
                }],
            };
            let mut program = ControlPlaneProgram::default();
            program.install_acl(
                SimTime::from_millis(200),
                victim,
                PolicyCompiler.compile_k8s(&policy),
            );
            b.attach_reliable_control_plane(h0, program, ReliabilityConfig::default());
            b.attach_faults(
                h0,
                FaultSchedule::new()
                    .crash(SimTime::from_secs(1), SimTime::from_millis(50))
                    .channel(ChannelFaultConfig {
                        drop_p: 0.25,
                        dup_p: 0.25,
                        delay: SimTime::from_millis(2),
                        jitter: SimTime::from_millis(7),
                        seed: 0xBEEF,
                    }),
            );
            let key = FlowKey::tcp([10, 1, 0, 2], [10, 0, 0, 2], 1000, 80);
            b.add_source(h1, Box::new(CbrSource::new(key, 400, 2_000.0)));
            let probe = FlowKey::tcp([10, 9, 0, 1], [10, 0, 0, 2], 40_000, 80);
            b.add_source(h2, Box::new(CbrSource::new(probe, 64, 500.0)));
            b.build().run()
        };

        for kind in [
            BackendKind::OvsCache,
            BackendKind::ExactHash,
            BackendKind::LpmTier,
            BackendKind::NicOffload,
        ] {
            let one = run(kind, 1);
            for workers in [2usize, 4] {
                let many = run(kind, workers);
                let label = format!("{kind:?} @ {workers} workers");
                assert_reports_equal(&one, &many, &label);
                // The engine accounting itself is worker-invariant.
                assert_eq!(one.engine, many.engine, "{label}: engine stats");
            }
            assert!(
                one.engine.shard_ticks_skipped > 0,
                "{kind:?}: idle host must be skipped"
            );
        }
    }

    #[test]
    fn null_message_exchange_survives_a_silent_shard() {
        // Two workers, and the second worker's shard receives and
        // sends no traffic at all: the lookahead protocol must keep
        // advancing on pure null messages (a deadlock hangs the test).
        let mut b = FleetBuilder::new(small_cfg(3, 2));
        let h0 = b.add_host(DpConfig::default());
        let h1 = b.add_host(DpConfig::default());
        b.add_pod(h0, ip([10, 0, 0, 1]));
        b.add_pod(h1, ip([10, 1, 0, 1])); // attached, never addressed
        let key = FlowKey::tcp([10, 0, 0, 9], [10, 0, 0, 1], 1000, 80);
        b.add_source(h0, Box::new(CbrSource::new(key, 1500, 1000.0)));
        let report = b.build().run();
        assert_eq!(report.source_totals[0].delivered, 3_000);
        assert!(
            report.engine.shard_ticks_skipped > 0,
            "the silent shard must be skipped: {:?}",
            report.engine
        );
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let run = |workers: usize| {
            let mut b = FleetBuilder::new(small_cfg(3, workers));
            for h in 0..3 {
                let host = b.add_host(DpConfig::default());
                b.add_pod(host, ip([10, h as u8, 0, 1]));
            }
            for h in 0..3u8 {
                let key = FlowKey::tcp([10, h, 0, 1], [10, (h + 1) % 3, 0, 1], 1000 + h as u16, 80);
                b.add_source(h as usize, Box::new(CbrSource::new(key, 800, 500.0)));
            }
            b.build().run()
        };
        let a = run(1);
        let b = run(3);
        assert_eq!(a.source_totals, b.source_totals);
        for (sa, sb) in a.throughput_bps.iter().zip(&b.throughput_bps) {
            assert_eq!(sa.iter().collect::<Vec<_>>(), sb.iter().collect::<Vec<_>>());
        }
    }
}
