//! The fleet's load-bearing guarantee: for a fixed seed and topology,
//! results are **byte-for-byte identical** for any worker count.
//! Parallelism is an execution detail; it must never leak into the
//! physics.
//!
//! The comparison is on the full debug rendering of every report
//! component (series points, totals, switch statistics), which is as
//! byte-for-byte as the report gets.

use pi_core::SimTime;
use pi_fleet::scenario::{fleet_colocation, fleet_migration, ColocationParams, MigrationParams};
use pi_fleet::FleetReport;

/// Renders everything except the worker count (which legitimately
/// differs between the compared runs).
fn fingerprint(r: &FleetReport) -> String {
    format!(
        "{:?}\n{:?}\n{:?}\n{:?}\n{:?}\n{:?}\n{:?}\n{:?}\nhosts={}",
        r.source_totals,
        r.throughput_bps,
        r.offered_bps,
        r.masks,
        r.megaflows,
        r.cpu_util,
        r.switch_stats,
        r.policy_updates,
        r.hosts,
    )
}

fn colocation_params(workers: usize) -> ColocationParams {
    ColocationParams {
        hosts: 4,
        victims: 4,
        attackers: 2,
        duration: SimTime::from_secs(8),
        attack_start: SimTime::from_secs(2),
        stagger: SimTime::from_secs(1),
        workers,
        ..Default::default()
    }
}

#[test]
fn colocation_run_is_identical_for_1_and_4_workers() {
    let serial = fleet_colocation(&colocation_params(1)).0.run();
    let parallel = fleet_colocation(&colocation_params(4)).0.run();
    assert_eq!(serial.workers, 1);
    assert_eq!(parallel.workers, 4);
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "worker count changed simulation results"
    );
    // Sanity: the run actually exercised the attack (masks exploded on
    // the attacked hosts) — a trivially idle fleet would make this test
    // vacuous.
    let max_masks = serial.masks.iter().map(|m| m.max()).fold(0.0, f64::max);
    assert!(max_masks > 4_000.0, "masks = {max_masks}");
}

#[test]
fn colocation_is_identical_for_odd_worker_counts() {
    // 3 workers over 4 shards: unbalanced ownership, same bytes.
    let a = fleet_colocation(&colocation_params(3)).0.run();
    let b = fleet_colocation(&colocation_params(4)).0.run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn policy_flap_fleet_is_identical_for_1_and_3_workers() {
    use pi_attack::AttackSchedule;
    use pi_cms::{Cidr, IngressRule, NetworkPolicy, PolicyCompiler, Protocol};
    use pi_core::FlowKey;
    use pi_datapath::DpConfig;
    use pi_fleet::{FleetBuilder, FleetConfig};
    use pi_sim::SimConfig;
    use pi_traffic::FanSource;

    // Three hosts; host 0 hosts a whitelisted victim service and the
    // flapping attacker pod, hosts 1–2 run bystander traffic. The
    // control plane is shard-local state: any worker count must yield
    // byte-identical results, including the policy-update timeline.
    let run = |workers: usize| {
        let mut b = FleetBuilder::new(FleetConfig {
            sim: SimConfig {
                duration: SimTime::from_secs(6),
                ..SimConfig::default()
            },
            workers,
        });
        let clients = 512usize;
        let victim_ip = u32::from_be_bytes([10, 0, 0, 10]);
        let attacker_ip = u32::from_be_bytes([10, 0, 0, 66]);
        for _ in 0..3 {
            b.add_host(DpConfig::default());
        }
        b.add_pod(0, victim_ip);
        b.add_pod(0, attacker_ip);
        b.add_pod(1, u32::from_be_bytes([10, 1, 0, 10]));
        let client_ip = |i: usize| [10, 2, (i >> 8) as u8, (i & 0xff) as u8];
        let policy = NetworkPolicy {
            name: "victim-peers".into(),
            ingress: vec![IngressRule {
                from: (0..clients).map(|i| Cidr::host(client_ip(i))).collect(),
                ports: vec![(Protocol::Tcp, Some(5201))],
            }],
        };
        b.install_acl(victim_ip, PolicyCompiler.compile_k8s(&policy));
        let attacker_table = PolicyCompiler.compile_k8s(&NetworkPolicy {
            name: "attacker".into(),
            ingress: vec![IngressRule {
                from: vec![Cidr::new(u32::from_be_bytes([10, 0, 0, 0]), 8).unwrap()],
                ports: vec![(Protocol::Tcp, Some(8080))],
            }],
        });
        b.install_acl(attacker_ip, attacker_table.clone());
        b.attach_control_plane(
            0,
            AttackSchedule::policy_flap(
                attacker_ip,
                &attacker_table,
                SimTime::from_secs(2),
                SimTime::from_secs(6),
                SimTime::from_millis(20),
            ),
        );
        // Victim fan injected over the fabric from host 1.
        let keys: Vec<FlowKey> = (0..clients)
            .map(|i| {
                FlowKey::tcp(
                    client_ip(i),
                    [10, 0, 0, 10],
                    41_000 + (i % 16_000) as u16,
                    5201,
                )
            })
            .collect();
        b.add_source(
            1,
            Box::new(FanSource::new(keys, 400, 40_000.0).named("victim")),
        );
        // Bystander on host 2 → host 1.
        let key = FlowKey::tcp([10, 2, 9, 9], [10, 1, 0, 10], 1000, 80);
        b.add_source(2, Box::new(pi_traffic::CbrSource::new(key, 800, 500.0)));
        b.build().run()
    };
    let serial = run(1);
    let parallel = run(3);
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "worker count changed policy-churn results"
    );
    // Sanity: the flap actually ran — host 0's update timeline ramps
    // past the build-time setup count, and the blast radius names it.
    let updates = serial.policy_updates[0].last().unwrap().1;
    assert!(updates > 100.0, "flap train landed: {updates}");
    let blast = serial.blast_radius(SimTime::from_secs(2), &[0], 0.5, 1e9);
    assert_eq!(blast.policy_churn.len(), 1, "only host 0 churns");
    assert_eq!(blast.policy_churn[0].0, 0);
    // And the flap really degraded the victim over the benign phase.
    assert!(
        blast.degraded_sources.contains(&0),
        "victim degraded: {:?}",
        blast.ratios
    );
}

#[test]
fn migration_run_is_identical_for_1_and_4_workers() {
    let params = |workers| MigrationParams {
        hosts: 4,
        victims: 3,
        duration: SimTime::from_secs(8),
        attack_start: SimTime::from_secs(1),
        migrate_at: SimTime::from_secs(4),
        workers,
        ..Default::default()
    };
    let serial = fleet_migration(&params(1)).0.run();
    let parallel = fleet_migration(&params(4)).0.run();
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "worker count changed migration results"
    );
}
