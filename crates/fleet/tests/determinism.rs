//! The fleet's load-bearing guarantee: for a fixed seed and topology,
//! results are **byte-for-byte identical** for any worker count.
//! Parallelism is an execution detail; it must never leak into the
//! physics.
//!
//! The comparison is on the full debug rendering of every report
//! component (series points, totals, switch statistics), which is as
//! byte-for-byte as the report gets.

use pi_core::SimTime;
use pi_fleet::scenario::{fleet_colocation, fleet_migration, ColocationParams, MigrationParams};
use pi_fleet::FleetReport;

/// Renders everything except the worker count (which legitimately
/// differs between the compared runs).
fn fingerprint(r: &FleetReport) -> String {
    format!(
        "{:?}\n{:?}\n{:?}\n{:?}\n{:?}\n{:?}\n{:?}\nhosts={}",
        r.source_totals,
        r.throughput_bps,
        r.offered_bps,
        r.masks,
        r.megaflows,
        r.cpu_util,
        r.switch_stats,
        r.hosts,
    )
}

fn colocation_params(workers: usize) -> ColocationParams {
    ColocationParams {
        hosts: 4,
        victims: 4,
        attackers: 2,
        duration: SimTime::from_secs(8),
        attack_start: SimTime::from_secs(2),
        stagger: SimTime::from_secs(1),
        workers,
        ..Default::default()
    }
}

#[test]
fn colocation_run_is_identical_for_1_and_4_workers() {
    let serial = fleet_colocation(&colocation_params(1)).0.run();
    let parallel = fleet_colocation(&colocation_params(4)).0.run();
    assert_eq!(serial.workers, 1);
    assert_eq!(parallel.workers, 4);
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "worker count changed simulation results"
    );
    // Sanity: the run actually exercised the attack (masks exploded on
    // the attacked hosts) — a trivially idle fleet would make this test
    // vacuous.
    let max_masks = serial.masks.iter().map(|m| m.max()).fold(0.0, f64::max);
    assert!(max_masks > 4_000.0, "masks = {max_masks}");
}

#[test]
fn colocation_is_identical_for_odd_worker_counts() {
    // 3 workers over 4 shards: unbalanced ownership, same bytes.
    let a = fleet_colocation(&colocation_params(3)).0.run();
    let b = fleet_colocation(&colocation_params(4)).0.run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn migration_run_is_identical_for_1_and_4_workers() {
    let params = |workers| MigrationParams {
        hosts: 4,
        victims: 3,
        duration: SimTime::from_secs(8),
        attack_start: SimTime::from_secs(1),
        migrate_at: SimTime::from_secs(4),
        workers,
        ..Default::default()
    };
    let serial = fleet_migration(&params(1)).0.run();
    let parallel = fleet_migration(&params(4)).0.run();
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "worker count changed migration results"
    );
}
