//! The bounded upcall pipeline: how the switch services megaflow misses.
//!
//! Real OVS does not resolve a cache miss inline. The datapath hands the
//! packet to a *handler* thread through a fixed-capacity per-port upcall
//! queue (tail-dropping when full — `ovs_dp_upcall` returns `ENOBUFS`),
//! handlers run full classification under their own CPU, and generated
//! megaflows are installed in batches, so packets of the same flow that
//! arrive between the miss and the install also upcall. Those three
//! properties — finite queues, finite handler CPU, and the
//! miss-to-install window — are what a slow-path DoS saturates: the
//! attack does not need to win the fast path if it can starve the
//! machinery that *repairs* the fast path.
//!
//! [`PipelineMode`] selects between the seed's synchronous semantics
//! ([`PipelineMode::Inline`]) and the bounded pipeline
//! ([`PipelineMode::Bounded`]). Under a bounded pipeline:
//!
//! * a megaflow miss enqueues a [`PendingUpcall`] on the queue of the
//!   packet's destination vport (unroutable packets share
//!   [`UNROUTABLE_QUEUE`]); a queue at `queue_capacity` tail-drops the
//!   packet and counts it in [`UpcallStats::queue_drops`];
//! * [`crate::VSwitch::drain_upcalls`] runs one handler *step*: queues
//!   are serviced **deepest backlog first** (batch-greedy handlers
//!   amortise wakeups by draining the busiest socket — the realistic,
//!   throughput-optimal discipline that structurally starves sparse
//!   ports under a flood), each FIFO within itself, under
//!   `handler_cycles_per_step` (priced by the [`crate::CostModel`]);
//!   `port_quota_per_step` caps how many upcalls one port may have
//!   resolved per step — the OVS-style flow-setup rate limit the
//!   fair-share mitigation uses to fix exactly that starvation;
//! * megaflow installs produced during the step are *batched* and land
//!   at the end of the step, so same-step packets of a freshly resolved
//!   flow still miss (and re-upcall), exactly like real OVS.
//!
//! With an unbounded queue, an infinite handler budget and one drain per
//! packet, the bounded pipeline is observationally identical to the
//! inline mode — pinned bit-for-bit by
//! `crates/datapath/tests/upcall_equivalence.rs`.

use std::collections::{BTreeMap, HashMap, VecDeque};

use pi_classifier::Action;
use pi_core::{FlowKey, MaskedKey, SimTime};

/// The queue id shared by packets whose destination no pod answers for
/// (they still upcall — and a destination-spray flood lands here).
pub const UNROUTABLE_QUEUE: u32 = u32::MAX;

/// Capacity multiplier of the *shared* queues — the unroutable/default
/// queue and the fabric uplink port — relative to a pod port's queue:
/// traffic without a dedicated vport of its own shares one buffer,
/// sized several ports deep (the kernel's default-socket analogue).
/// Under deepest-backlog-first handler service this is what lets a
/// destination-spray flood permanently outrank any single pod port —
/// the starvation the per-port quota corrects.
///
/// The flip side: because these queues are shared, the per-port quota
/// cannot separate tenants *within* them — a flood of remote-bound
/// setups contends with every other tenant's uplink-bound flow setups
/// (see `pi_mitigation::quota` for the limitation).
pub const UNROUTABLE_CAPACITY_FACTOR: usize = 8;

/// The queue capacity of `queue` under a per-port cap of `capacity`.
/// The shared queues (unroutable, uplink) get
/// [`UNROUTABLE_CAPACITY_FACTOR`]× the per-port cap.
pub fn queue_capacity_of(queue: u32, capacity: usize) -> usize {
    if queue == UNROUTABLE_QUEUE || queue == pi_core::Port::UPLINK_RAW {
        capacity.saturating_mul(UNROUTABLE_CAPACITY_FACTOR)
    } else {
        capacity
    }
}

/// How the switch services megaflow misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineMode {
    /// Misses are resolved synchronously inside
    /// [`crate::VSwitch::process`] (the seed's semantics). No queue, no
    /// handler budget, installs land immediately.
    Inline,
    /// Misses are deferred through the bounded handler pipeline and
    /// resolved by [`crate::VSwitch::drain_upcalls`].
    Bounded(UpcallPipelineConfig),
}

impl PipelineMode {
    /// True for the bounded pipeline.
    pub fn is_bounded(&self) -> bool {
        matches!(self, PipelineMode::Bounded(_))
    }
}

/// Tunables of the bounded pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpcallPipelineConfig {
    /// Per-port upcall queue capacity, packets (kernel OVS defaults to a
    /// small per-vport socket buffer; saturating it is the attack).
    pub queue_capacity: usize,
    /// Handler cycle budget per drain step, priced by the switch's
    /// [`crate::CostModel`] (`upcall_fixed`, `per_rule`, `mfc_install`,
    /// `emc_insert`). `u64::MAX` means effectively infinite.
    pub handler_cycles_per_step: u64,
    /// Optional fair-share cap: at most this many upcalls resolved per
    /// port per step; over-quota ports keep their backlog queued (and
    /// eventually tail-drop their own traffic, not their neighbours').
    pub port_quota_per_step: Option<u32>,
}

impl Default for UpcallPipelineConfig {
    /// OVS-flavoured defaults for a 1 ms drain step: a 64-packet
    /// per-port queue and enough handler cycles for roughly a dozen
    /// default-cost upcalls per step (~12 k flow setups/s).
    fn default() -> Self {
        UpcallPipelineConfig {
            queue_capacity: 64,
            handler_cycles_per_step: 400_000,
            port_quota_per_step: None,
        }
    }
}

impl UpcallPipelineConfig {
    /// A pipeline with no capacity pressure at all: unbounded queue,
    /// infinite handler budget, no quota. Differentially equal to
    /// [`PipelineMode::Inline`] when drained once per packet.
    pub fn unbounded() -> Self {
        UpcallPipelineConfig {
            queue_capacity: usize::MAX,
            handler_cycles_per_step: u64::MAX,
            port_quota_per_step: None,
        }
    }

    /// Sets the per-port per-step quota (the fair-share mitigation).
    #[must_use]
    pub fn with_port_quota(mut self, quota: u32) -> Self {
        self.port_quota_per_step = Some(quota);
        self
    }
}

/// Aggregate pipeline counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpcallStats {
    /// Upcalls accepted onto a queue.
    pub enqueued: u64,
    /// Upcalls tail-dropped at a full queue — the handler-saturation
    /// observable (distinct from the node ingress-queue drop counter).
    pub queue_drops: u64,
    /// Upcalls resolved by handlers.
    pub handled: u64,
    /// Megaflow installs flushed at step ends.
    pub installs_flushed: u64,
    /// Queue-service truncations by the per-port quota: counted once
    /// per (port, step) whose backlog was left waiting — not once per
    /// waiting upcall.
    pub quota_deferrals: u64,
    /// Megaflow misses refused service because their destination was
    /// quarantined by the defense controller — these never reach a
    /// queue (and are charged only the fast-path share of the miss).
    pub quarantine_drops: u64,
    /// Total whole steps handled upcalls spent queued (0 = resolved at
    /// the first drain after arrival).
    pub wait_steps: u64,
    /// High-water mark of the total pending-upcall count.
    pub max_depth: usize,
}

impl UpcallStats {
    /// Mean install latency of handled upcalls, in drain steps (the
    /// miss-to-install window the bench reports).
    pub fn mean_wait_steps(&self) -> f64 {
        if self.handled == 0 {
            0.0
        } else {
            self.wait_steps as f64 / self.handled as f64
        }
    }
}

/// Per-port pipeline counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortUpcallStats {
    /// Upcalls accepted for this port.
    pub enqueued: u64,
    /// Upcalls tail-dropped at this port's full queue.
    pub queue_drops: u64,
    /// Upcalls for this port resolved by handlers.
    pub handled: u64,
}

/// A megaflow miss waiting for a handler.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingUpcall {
    /// Caller-visible handle for matching deferred packet metadata.
    pub token: u64,
    /// The packet awaiting a verdict.
    pub key: FlowKey,
    /// The packet's precomputed full hash (for the EMC promotion on
    /// resolution).
    pub hash: u64,
    /// Queue id (destination vport, or [`UNROUTABLE_QUEUE`]).
    pub queue: u32,
    /// Subtables probed during the missing megaflow lookup.
    pub probes: usize,
    /// Stage checks during the missing megaflow lookup.
    pub stage_checks: usize,
    /// Whether the microflow cache was probed (and missed) first.
    pub emc_probed: bool,
    /// The drain-step counter at enqueue time.
    pub enqueued_step: u64,
}

/// A megaflow install staged for the end-of-step flush.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StagedInstall {
    pub megaflow: MaskedKey,
    pub action: Action,
    /// Resolution time (the install's usage stamp).
    pub at: SimTime,
    /// Whether the resolution predicted a fresh install (as opposed to a
    /// refresh of an existing/already-staged entry or a flow-limit
    /// refusal).
    pub fresh: bool,
}

/// The pipeline state one [`crate::VSwitch`] owns.
#[derive(Debug, Default)]
pub(crate) struct UpcallQueue {
    /// Per-port FIFO queues (BTreeMap for deterministic tie-breaks;
    /// emptied queues are removed so the map only holds live backlogs).
    queues: BTreeMap<u32, VecDeque<PendingUpcall>>,
    /// Running total across all queues (O(1) depth accounting).
    pending_total: usize,
    /// Flush order of the step's staged installs.
    installs: Vec<StagedInstall>,
    /// Megaflow → index into `installs` (O(1) dedup; iteration never
    /// touches this map, so its ordering cannot leak).
    staged_index: HashMap<MaskedKey, usize>,
    /// Staged installs predicted to create fresh entries.
    staged_fresh: usize,
    stats: UpcallStats,
    per_port: BTreeMap<u32, PortUpcallStats>,
    next_token: u64,
    /// Completed drain steps (the pipeline's install-latency clock).
    step: u64,
    handler_carry: i64,
}

impl UpcallQueue {
    /// Accepts `key` onto `queue` unless it is at `capacity`; returns
    /// the pending token, or `None` on a tail drop.
    #[allow(clippy::too_many_arguments)]
    pub fn try_enqueue(
        &mut self,
        queue: u32,
        capacity: usize,
        key: &FlowKey,
        hash: u64,
        probes: usize,
        stage_checks: usize,
        emc_probed: bool,
    ) -> Option<u64> {
        let port = self.per_port.entry(queue).or_default();
        // Capacity check before creating any storage, so a tail drop
        // (including the degenerate capacity-0 config) never leaves an
        // empty queue entry behind.
        if self.queues.get(&queue).map(|q| q.len()).unwrap_or(0) >= capacity {
            self.stats.queue_drops += 1;
            port.queue_drops += 1;
            return None;
        }
        self.stats.enqueued += 1;
        port.enqueued += 1;
        let token = self.next_token;
        self.next_token += 1;
        self.queues
            .entry(queue)
            .or_default()
            .push_back(PendingUpcall {
                token,
                key: *key,
                hash,
                queue,
                probes,
                stage_checks,
                emc_probed,
                enqueued_step: self.step,
            });
        self.pending_total += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.pending_total);
        Some(token)
    }

    /// Starts a drain step: bumps the step clock and returns this
    /// step's handler budget (carry included, saturated into `i64`).
    pub fn begin_step(&mut self, cfg: &UpcallPipelineConfig) -> i64 {
        self.step += 1;
        cfg.handler_cycles_per_step.min(i64::MAX as u64) as i64 + self.handler_carry
    }

    /// Ends a drain step, recording the leftover budget as carry (an
    /// overrun becomes next step's debt; unspent budget is not banked).
    pub fn end_step(&mut self, leftover_budget: i64) {
        self.handler_carry = leftover_budget.min(0);
    }

    /// This step's service order: queue ids by descending backlog
    /// depth, ties broken by the oldest head-of-line upcall (a snapshot
    /// — serving does not reorder mid-step). Batch-greedy handlers
    /// drain the busiest socket first (and, among equally loaded ones,
    /// the longest-waiting); under a flood whose queue is pinned at
    /// capacity this starves sparse ports, which is precisely what the
    /// per-port quota corrects.
    pub fn service_order(&self) -> Vec<u32> {
        let mut ids: Vec<(usize, u64, u32)> = self
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(id, q)| (q.len(), q.front().expect("non-empty").token, *id))
            .collect();
        ids.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        ids.into_iter().map(|(_, _, id)| id).collect()
    }

    /// Pops the oldest pending upcall of one queue (dropping the
    /// queue's storage once it empties, so the map never accumulates
    /// dead entries across a run's worth of ports).
    pub fn pop_from(&mut self, queue: u32) -> Option<PendingUpcall> {
        let fifo = self.queues.get_mut(&queue)?;
        let pending = fifo.pop_front()?;
        self.pending_total -= 1;
        if fifo.is_empty() {
            self.queues.remove(&queue);
        }
        Some(pending)
    }

    /// Records a quota-service truncation: a queue was cut off by the
    /// per-port quota while it still had backlog (counted once per
    /// port per step, not per waiting upcall).
    pub fn note_quota_deferral(&mut self) {
        self.stats.quota_deferrals += 1;
    }

    /// Records a miss refused service because its destination is
    /// quarantined (works under both pipeline modes — quarantine is a
    /// slow-path admission decision, not a queue property).
    pub fn note_quarantine_drop(&mut self) {
        self.stats.quarantine_drops += 1;
    }

    /// Records a resolution: per-port counters and the wait-step
    /// accounting. `wait_steps` is the number of whole drain steps the
    /// upcall sat queued.
    pub fn note_resolved(&mut self, queue: u32, wait_steps: u64) {
        self.stats.handled += 1;
        self.stats.wait_steps += wait_steps;
        self.per_port.entry(queue).or_default().handled += 1;
    }

    /// True when `mk` is already staged for the end-of-step flush.
    pub fn install_staged(&self, mk: &MaskedKey) -> bool {
        self.staged_index.contains_key(mk)
    }

    /// Number of staged installs predicted to create fresh entries
    /// (feeds the flow-limit prediction for later resolutions of the
    /// same step).
    pub fn fresh_staged(&self) -> usize {
        self.staged_fresh
    }

    /// Total installs staged for the end-of-step flush (fresh entries
    /// and refreshes alike — a refresh still moves a usage stamp, so a
    /// non-empty staging area means pending observable work).
    pub fn staged_installs(&self) -> usize {
        self.installs.len()
    }

    /// The handler budget carry (always ≤ 0: an overrun owed to the
    /// next drain step). While it is negative, even an empty drain step
    /// changes state by repaying the debt.
    pub fn handler_carry(&self) -> i64 {
        self.handler_carry
    }

    /// Stages an install for the end-of-step flush. Re-staging an
    /// already-staged megaflow updates its verdict and usage stamp in
    /// place — exactly the net effect of the refreshes the inline path
    /// would have performed, without flushing the same flow repeatedly.
    pub fn stage_install(&mut self, megaflow: MaskedKey, action: Action, at: SimTime, fresh: bool) {
        if let Some(&i) = self.staged_index.get(&megaflow) {
            self.installs[i].action = action;
            self.installs[i].at = at;
            return;
        }
        self.staged_index.insert(megaflow, self.installs.len());
        if fresh {
            self.staged_fresh += 1;
        }
        self.installs.push(StagedInstall {
            megaflow,
            action,
            at,
            fresh,
        });
    }

    /// Takes the staged installs for flushing, counting them.
    pub fn take_installs(&mut self) -> Vec<StagedInstall> {
        self.stats.installs_flushed += self.installs.len() as u64;
        self.staged_index.clear();
        self.staged_fresh = 0;
        std::mem::take(&mut self.installs)
    }

    /// Discards staged installs (policy change: their verdicts are
    /// stale). Queued upcalls stay — they re-classify under the new
    /// policy when a handler reaches them.
    pub fn discard_installs(&mut self) {
        self.installs.clear();
        self.staged_index.clear();
        self.staged_fresh = 0;
    }

    /// Crash wipe: every queued upcall and staged install is lost with
    /// the switch process. Lifetime counters, per-port stats, the token
    /// sequence and the step clock survive — they model the node
    /// agent's accounting, not switch memory. Returns the number of
    /// pending upcalls discarded.
    pub fn crash_clear(&mut self) -> usize {
        let lost = self.pending_total;
        self.queues.clear();
        self.pending_total = 0;
        self.discard_installs();
        lost
    }

    /// The current drain-step counter.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Total pending upcalls across all queues.
    pub fn total_depth(&self) -> usize {
        self.pending_total
    }

    /// Pending upcalls on one queue.
    pub fn depth_of(&self, queue: u32) -> usize {
        self.queues.get(&queue).map(|q| q.len()).unwrap_or(0)
    }

    /// Aggregate counters.
    pub fn stats(&self) -> UpcallStats {
        self.stats
    }

    /// Per-port counters in ascending queue-id order (deterministic).
    pub fn port_stats(&self) -> Vec<(u32, PortUpcallStats)> {
        self.per_port.iter().map(|(q, s)| (*q, *s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> FlowKey {
        FlowKey::tcp([10, 0, 0, n], [10, 1, 0, 1], 1000 + n as u16, 80)
    }

    #[test]
    fn capacity_is_per_queue_and_drops_count_per_port() {
        let mut q = UpcallQueue::default();
        for i in 0..3u8 {
            assert!(q.try_enqueue(1, 2, &key(i), i as u64, 0, 0, true).is_some() == (i < 2));
        }
        // Port 2 has its own capacity.
        assert!(q.try_enqueue(2, 2, &key(9), 9, 0, 0, true).is_some());
        assert_eq!(q.depth_of(1), 2);
        assert_eq!(q.depth_of(2), 1);
        assert_eq!(q.total_depth(), 3);
        let s = q.stats();
        assert_eq!(s.enqueued, 3);
        assert_eq!(s.queue_drops, 1);
        assert_eq!(s.max_depth, 3);
        let per_port = q.port_stats();
        assert_eq!(
            per_port[0],
            (
                1,
                PortUpcallStats {
                    enqueued: 2,
                    queue_drops: 1,
                    handled: 0
                }
            )
        );
        assert_eq!(
            per_port[1],
            (
                2,
                PortUpcallStats {
                    enqueued: 1,
                    queue_drops: 0,
                    handled: 0
                }
            )
        );
    }

    #[test]
    fn tokens_are_unique_and_fifo_within_a_queue() {
        let mut q = UpcallQueue::default();
        let a = q.try_enqueue(1, 10, &key(1), 1, 0, 0, true).unwrap();
        let b = q.try_enqueue(1, 10, &key(2), 2, 0, 0, true).unwrap();
        assert_ne!(a, b);
        assert_eq!(q.pop_from(1).unwrap().token, a);
        assert_eq!(q.pop_from(1).unwrap().token, b);
        assert!(q.pop_from(1).is_none());
        assert!(q.pop_from(7).is_none());
    }

    #[test]
    fn service_order_is_deepest_backlog_first_with_id_tiebreak() {
        let mut q = UpcallQueue::default();
        q.try_enqueue(5, 10, &key(1), 1, 0, 0, true);
        for i in 0..3u8 {
            q.try_enqueue(2, 10, &key(i), i as u64, 0, 0, true);
        }
        q.try_enqueue(9, 10, &key(4), 4, 0, 0, true);
        // Depths: q2=3, q5=1, q9=1 → deepest first, then id order.
        assert_eq!(q.service_order(), vec![2, 5, 9]);
        // Empty queues never appear.
        q.pop_from(5);
        assert_eq!(q.service_order(), vec![2, 9]);
    }

    #[test]
    fn begin_step_saturates_infinite_budget_and_applies_carry() {
        let mut q = UpcallQueue::default();
        let inf = UpcallPipelineConfig::unbounded();
        assert_eq!(q.begin_step(&inf), i64::MAX);
        let tight = UpcallPipelineConfig {
            handler_cycles_per_step: 100,
            ..UpcallPipelineConfig::default()
        };
        q.end_step(-30); // overran by 30
        assert_eq!(q.begin_step(&tight), 70, "carry debt repaid first");
        q.end_step(50); // leftover budget is NOT banked
        assert_eq!(q.begin_step(&tight), 100);
    }

    #[test]
    fn staged_installs_dedup_and_predict_freshness() {
        let mut q = UpcallQueue::default();
        let mk = MaskedKey::new(key(1), pi_core::FlowMask::default());
        assert!(!q.install_staged(&mk));
        q.stage_install(mk, Action::Allow, SimTime::ZERO, true);
        assert!(q.install_staged(&mk));
        assert_eq!(q.fresh_staged(), 1);
        // A same-step re-resolution of the flow refreshes the staged
        // entry in place (latest verdict/stamp wins), not a second one.
        q.stage_install(mk, Action::Deny, SimTime::from_secs(1), false);
        assert_eq!(q.fresh_staged(), 1);
        let flushed = q.take_installs();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].action, Action::Deny);
        assert_eq!(flushed[0].at, SimTime::from_secs(1));
        assert!(flushed[0].fresh);
        assert_eq!(q.stats().installs_flushed, 1);
        assert_eq!(q.fresh_staged(), 0);
        assert!(!q.install_staged(&mk));
        q.stage_install(mk, Action::Allow, SimTime::ZERO, true);
        q.discard_installs();
        assert_eq!(q.take_installs().len(), 0);
        assert_eq!(q.fresh_staged(), 0);
    }

    #[test]
    fn capacity_zero_drops_without_leaving_dead_queues() {
        let mut q = UpcallQueue::default();
        assert!(q.try_enqueue(3, 0, &key(1), 1, 0, 0, true).is_none());
        assert_eq!(q.stats().queue_drops, 1);
        assert!(q.service_order().is_empty());
        assert_eq!(q.total_depth(), 0);
        // The per-port drop counter still attributes the loss.
        assert_eq!(q.port_stats()[0].1.queue_drops, 1);
    }

    #[test]
    fn wait_step_accounting_feeds_mean_latency() {
        let mut q = UpcallQueue::default();
        q.try_enqueue(1, 10, &key(1), 1, 0, 0, true);
        q.note_resolved(1, 0);
        q.note_resolved(1, 3);
        let s = q.stats();
        assert_eq!(s.wait_steps, 3);
        assert_eq!(s.handled, 2);
        assert!((s.mean_wait_steps() - 1.5).abs() < 1e-12);
        assert_eq!(UpcallStats::default().mean_wait_steps(), 0.0);
    }
}
