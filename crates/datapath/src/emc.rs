//! The microflow cache (OVS's EMC / exact-match cache).
//!
//! A bounded, set-associative, hash-indexed store from the *full* flow
//! key to a verdict. Hits bypass the megaflow walk entirely, so whether a
//! victim's packets stay in here decides whether the attack reaches them:
//! the covert stream's endless supply of unique keys collides with and
//! evicts victim entries (§2: the attack "trash[es] the MF with excess
//! entries and masks" — and the exact-match layer above it).
//!
//! Entries carry a generation stamp; bumping the switch generation after
//! policy changes or megaflow evictions invalidates the whole cache in
//! O(1), a conservative model of OVS's EMC revalidation.
//!
//! Set indexing uses the deterministic one-pass flow hash
//! ([`pi_core::flow_hash`]); the `*_hashed` entry points accept the hash
//! precomputed by the caller, so a batch of packets is hashed exactly
//! once for both the EMC probe and any later promotion.

use pi_classifier::Action;
use pi_core::{flow_hash, FlowKey, SimTime, SplitMix64};

#[derive(Debug, Clone, Copy)]
struct EmcEntry {
    key: FlowKey,
    action: Action,
    generation: u64,
    last_used: SimTime,
}

/// Counters for microflow cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmcStats {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Insertions that evicted a live (same-generation) entry — the
    /// pollution signal.
    pub collision_evictions: u64,
    /// Insertions performed.
    pub inserts: u64,
    /// Insertions skipped by the probabilistic filter.
    pub skipped_inserts: u64,
}

/// A fixed-size, `ways`-associative exact-match cache.
#[derive(Debug, Clone)]
pub struct MicroflowCache {
    slots: Vec<Option<EmcEntry>>,
    sets: usize,
    ways: usize,
    insert_prob: f64,
    rng: SplitMix64,
    stats: EmcStats,
}

impl MicroflowCache {
    /// Creates a cache with `entries` total slots and `ways`
    /// associativity. `entries` is rounded up so the set count is a
    /// power of two (index = hash & (sets-1), as in OVS).
    pub fn new(entries: usize, ways: usize, insert_prob: f64, seed: u64) -> Self {
        assert!(ways >= 1, "need at least one way");
        assert!(entries >= ways, "capacity below one set");
        let sets = (entries / ways).next_power_of_two();
        MicroflowCache {
            slots: vec![None; sets * ways],
            sets,
            ways,
            insert_prob,
            rng: SplitMix64::new(seed),
            stats: EmcStats::default(),
        }
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Live entries under `generation`.
    pub fn occupancy(&self, generation: u64) -> usize {
        self.slots
            .iter()
            .flatten()
            .filter(|e| e.generation == generation)
            .count()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> EmcStats {
        self.stats
    }

    /// The EMC reads its set index from a *different segment* of the
    /// 64-bit flow hash than the flat megaflow tables (which consume the
    /// low bits for their slot index), mirroring OVS's
    /// `EM_FLOW_HASH_SEGS` design of indexing the EMC by distinct
    /// segments of the RSS hash — so clustering in one structure does
    /// not automatically imply clustering in the other.
    const SET_SEGMENT_SHIFT: u32 = 8;

    #[inline]
    fn set_index(&self, hash: u64) -> usize {
        ((hash >> Self::SET_SEGMENT_SHIFT) as usize) & (self.sets - 1)
    }

    /// Looks up `key`; entries from older generations are treated as
    /// absent. Hits refresh the entry's LRU stamp.
    pub fn lookup(&mut self, key: &FlowKey, generation: u64, now: SimTime) -> Option<Action> {
        self.lookup_hashed(flow_hash(key), key, generation, now)
    }

    /// [`MicroflowCache::lookup`] with the key's flow hash already
    /// computed (the datapath hashes each packet once for all levels).
    pub fn lookup_hashed(
        &mut self,
        hash: u64,
        key: &FlowKey,
        generation: u64,
        now: SimTime,
    ) -> Option<Action> {
        let base = self.set_index(hash) * self.ways;
        for e in self.slots[base..base + self.ways].iter_mut().flatten() {
            if e.generation == generation && e.key == *key {
                e.last_used = now;
                self.stats.hits += 1;
                return Some(e.action);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts (subject to the probabilistic filter), evicting the LRU
    /// way on a full set. Returns whether an insertion happened.
    pub fn insert(&mut self, key: &FlowKey, action: Action, generation: u64, now: SimTime) -> bool {
        self.insert_hashed(flow_hash(key), key, action, generation, now)
    }

    /// [`MicroflowCache::insert`] with the key's flow hash already
    /// computed.
    pub fn insert_hashed(
        &mut self,
        hash: u64,
        key: &FlowKey,
        action: Action,
        generation: u64,
        now: SimTime,
    ) -> bool {
        if self.insert_prob < 1.0 && !self.rng.gen_bool(self.insert_prob) {
            self.stats.skipped_inserts += 1;
            return false;
        }
        let base = self.set_index(hash) * self.ways;
        let set = &mut self.slots[base..base + self.ways];

        // Same key (refresh) or dead/free slot first.
        let mut victim: Option<usize> = None;
        for (i, slot) in set.iter().enumerate() {
            match slot {
                Some(e) if e.key == *key => {
                    victim = Some(i);
                    break;
                }
                Some(e) if e.generation != generation => {
                    victim.get_or_insert(i);
                }
                None => {
                    victim.get_or_insert(i);
                }
                _ => {}
            }
        }
        let idx = match victim {
            Some(i) => i,
            None => {
                // Evict the least recently used live way.
                self.stats.collision_evictions += 1;
                set.iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.map(|e| e.last_used).unwrap_or(SimTime::ZERO))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            }
        };
        set[idx] = Some(EmcEntry {
            key: *key,
            action,
            generation,
            last_used: now,
        });
        self.stats.inserts += 1;
        true
    }

    /// Evicts every entry whose flow is addressed **to** `ip` (host
    /// byte order), returning the number of slots freed. This is the
    /// destination-scoped invalidation path: EMC entries are exact
    /// matches, so the destination of each cached verdict is known and
    /// a policy change at one pod need not touch any other tenant's
    /// entries. Stale-generation entries for `ip` are swept too — they
    /// are already unreachable, and dropping them keeps the slot free
    /// for live flows.
    pub fn evict_destination(&mut self, ip: u32) -> usize {
        let mut evicted = 0;
        for slot in &mut self.slots {
            if slot.as_ref().is_some_and(|e| e.key.ip_dst == ip) {
                *slot = None;
                evicted += 1;
            }
        }
        evicted
    }

    /// Drops every entry (tests / explicit cache flush).
    pub fn clear(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u32) -> FlowKey {
        FlowKey::tcp(
            std::net::Ipv4Addr::from(0x0a00_0000 + n),
            [10, 0, 0, 1],
            (n % 60_000) as u16 + 1,
            80,
        )
    }

    fn cache() -> MicroflowCache {
        MicroflowCache::new(64, 2, 1.0, 7)
    }

    #[test]
    fn hit_after_insert() {
        let mut c = cache();
        let t = SimTime::from_millis(1);
        assert!(c.insert(&key(1), Action::Allow, 0, t));
        assert_eq!(c.lookup(&key(1), 0, t), Some(Action::Allow));
        assert_eq!(c.lookup(&key(2), 0, t), None);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn evict_destination_removes_only_that_dst() {
        let mut c = cache();
        let t = SimTime::from_millis(1);
        // Two flows to 10.0.0.1 (the `key` helper's dst) and one to
        // another pod.
        assert!(c.insert(&key(1), Action::Allow, 0, t));
        assert!(c.insert(&key(2), Action::Allow, 0, t));
        let other = FlowKey::tcp([10, 9, 9, 9], [10, 0, 0, 2], 7, 80);
        assert!(c.insert(&other, Action::Allow, 0, t));
        assert_eq!(c.evict_destination(u32::from_be_bytes([10, 0, 0, 1])), 2);
        assert_eq!(c.lookup(&key(1), 0, t), None);
        assert_eq!(c.lookup(&key(2), 0, t), None);
        assert_eq!(
            c.lookup(&other, 0, t),
            Some(Action::Allow),
            "bystander entry survives the scoped eviction"
        );
        assert_eq!(c.evict_destination(u32::from_be_bytes([1, 2, 3, 4])), 0);
    }

    #[test]
    fn generation_bump_invalidates_everything() {
        let mut c = cache();
        let t = SimTime::ZERO;
        c.insert(&key(1), Action::Allow, 0, t);
        c.insert(&key(2), Action::Deny, 0, t);
        assert_eq!(c.occupancy(0), 2);
        assert_eq!(c.lookup(&key(1), 1, t), None);
        assert_eq!(c.occupancy(1), 0);
        // Dead slots are reusable.
        c.insert(&key(3), Action::Allow, 1, t);
        assert_eq!(c.lookup(&key(3), 1, t), Some(Action::Allow));
    }

    #[test]
    fn same_key_insert_refreshes_not_duplicates() {
        let mut c = cache();
        let t = SimTime::ZERO;
        c.insert(&key(1), Action::Allow, 0, t);
        c.insert(&key(1), Action::Deny, 0, t);
        assert_eq!(c.occupancy(0), 1);
        assert_eq!(c.lookup(&key(1), 0, t), Some(Action::Deny));
    }

    #[test]
    fn pollution_evicts_under_collision_pressure() {
        // Fill far beyond capacity with unique keys: the victim entry
        // must eventually fall out — the attack's EMC-thrash mechanism.
        let mut c = MicroflowCache::new(64, 2, 1.0, 7);
        let t = SimTime::ZERO;
        let victim = key(999_000);
        c.insert(&victim, Action::Allow, 0, t);
        for n in 0..10_000 {
            c.insert(&key(n), Action::Deny, 0, SimTime::from_nanos(n as u64 + 1));
        }
        assert_eq!(c.lookup(&victim, 0, SimTime::from_secs(1)), None);
        assert!(c.stats().collision_evictions > 0);
    }

    #[test]
    fn lru_way_is_the_one_evicted() {
        // One set (ways = capacity) makes LRU order fully observable.
        let mut c = MicroflowCache::new(2, 2, 1.0, 7);
        c.insert(&key(1), Action::Allow, 0, SimTime::from_nanos(1));
        c.insert(&key(2), Action::Allow, 0, SimTime::from_nanos(2));
        // Touch key 1 so key 2 becomes LRU.
        assert!(c.lookup(&key(1), 0, SimTime::from_nanos(3)).is_some());
        c.insert(&key(3), Action::Allow, 0, SimTime::from_nanos(4));
        assert!(c.lookup(&key(1), 0, SimTime::from_nanos(5)).is_some());
        assert!(c.lookup(&key(2), 0, SimTime::from_nanos(6)).is_none());
        assert!(c.lookup(&key(3), 0, SimTime::from_nanos(7)).is_some());
    }

    #[test]
    fn probabilistic_insertion_skips_most() {
        let mut c = MicroflowCache::new(4096, 2, 0.01, 42);
        let t = SimTime::ZERO;
        let mut inserted = 0;
        for n in 0..10_000 {
            if c.insert(&key(n), Action::Allow, 0, t) {
                inserted += 1;
            }
        }
        assert!(
            (50..200).contains(&inserted),
            "~1% expected, got {inserted}"
        );
        assert_eq!(c.stats().skipped_inserts + c.stats().inserts, 10_000);
    }

    #[test]
    fn clear_empties() {
        let mut c = cache();
        c.insert(&key(1), Action::Allow, 0, SimTime::ZERO);
        c.clear();
        assert_eq!(c.lookup(&key(1), 0, SimTime::ZERO), None);
        assert_eq!(c.occupancy(0), 0);
    }

    #[test]
    fn capacity_rounds_to_power_of_two_sets() {
        let c = MicroflowCache::new(100, 2, 1.0, 0);
        assert_eq!(c.capacity() % 2, 0);
        assert!(c.capacity() >= 100);
        assert!((c.capacity() / 2).is_power_of_two());
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        MicroflowCache::new(8, 0, 1.0, 0);
    }
}
