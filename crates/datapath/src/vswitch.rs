//! The virtual switch: the full three-level pipeline per packet.
//!
//! Pipeline semantics follow the paper's Fig. 1: pods attach to virtual
//! ports, and a pod's ACL protects traffic **to** that pod
//! (microsegmentation is ingress whitelisting — the compiled rules match
//! `ip_src`, which only makes sense enforced at the destination). The
//! slow path therefore (1) routes on the destination IP to find the
//! target vport and (2) classifies against that pod's ACL; generated
//! megaflows pin `ip_dst` exactly and carry the ACL's un-wildcarded
//! fields (Fig. 2b).
//!
//! Both caches are **shared across all ports and tenants** — the
//! isolation gap the attack exploits: masks created by feeding one
//! tenant's ACL are walked by every other tenant's packets.

use std::collections::{BTreeSet, HashMap};

use pi_classifier::{Action, FlowTable};
use pi_core::{Field, FlowKey, KeyWords, SimTime, SplitMix64};
use pi_packet::extract_flow_key;
use pi_trace::Tracer;

use crate::config::DpConfig;
use crate::cost::CostModel;
use crate::emc::MicroflowCache;
use crate::megaflow::{InstallOutcome, MegaflowCache};
use crate::revalidator::{Revalidator, RevalidatorReport};
use crate::slowpath::SlowPath;
use crate::upcall::{
    PendingUpcall, PipelineMode, PortUpcallStats, UpcallQueue, UpcallStats, UNROUTABLE_QUEUE,
};

/// Which level of the pipeline resolved a packet, with the cost-bearing
/// counters of that path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathTaken {
    /// Exact-match cache hit.
    MicroflowHit,
    /// Megaflow (TSS) hit after `probes` subtable visits.
    MegaflowHit {
        /// Subtables visited.
        probes: usize,
        /// Stage-hash units of work.
        stage_checks: usize,
        /// Whether the microflow cache was probed first (and missed).
        emc_probed: bool,
        /// Whether the flow was promoted into the microflow cache.
        emc_inserted: bool,
    },
    /// Full slow-path upcall.
    Upcall {
        /// Subtables visited during the (missing) megaflow lookup.
        probes: usize,
        /// Stage-hash units of work.
        stage_checks: usize,
        /// Rules scanned by linear classification.
        rules_examined: usize,
        /// Whether a megaflow was installed (false ⇒ flow limit hit).
        installed: bool,
        /// Whether the microflow cache was probed first (and missed).
        emc_probed: bool,
        /// Whether the flow was promoted into the microflow cache.
        emc_inserted: bool,
    },
    /// Megaflow miss deferred into the bounded upcall pipeline
    /// ([`PipelineMode::Bounded`]): the packet sits on its port's upcall
    /// queue until a [`VSwitch::drain_upcalls`] step resolves it. The
    /// outcome's verdict is a placeholder ([`Action::Controller`], "sent
    /// to the slow path") and its cycles cover only the fast-path share
    /// of the miss.
    UpcallQueued {
        /// Subtables visited during the (missing) megaflow lookup.
        probes: usize,
        /// Stage-hash units of work.
        stage_checks: usize,
        /// Whether the microflow cache was probed first (and missed).
        emc_probed: bool,
        /// Handle matching this packet to its later [`ResolvedUpcall`].
        token: u64,
    },
    /// Megaflow miss tail-dropped at a full upcall queue — the
    /// handler-saturation loss the bounded pipeline makes expressible.
    /// No verdict is ever rendered for the packet.
    UpcallDropped {
        /// Subtables visited during the (missing) megaflow lookup.
        probes: usize,
        /// Stage-hash units of work.
        stage_checks: usize,
        /// Whether the microflow cache was probed first (and missed).
        emc_probed: bool,
    },
}

impl PathTaken {
    /// True for the cheapest (microflow) path.
    pub fn is_microflow(&self) -> bool {
        matches!(self, PathTaken::MicroflowHit)
    }

    /// True for a megaflow hit.
    pub fn is_megaflow(&self) -> bool {
        matches!(self, PathTaken::MegaflowHit { .. })
    }

    /// True for an upcall.
    pub fn is_upcall(&self) -> bool {
        matches!(self, PathTaken::Upcall { .. })
    }

    /// True when the packet was deferred into the upcall pipeline (its
    /// verdict arrives later, from [`VSwitch::drain_upcalls`]).
    pub fn is_queued(&self) -> bool {
        matches!(self, PathTaken::UpcallQueued { .. })
    }

    /// True when the packet was tail-dropped at a full upcall queue.
    pub fn is_upcall_dropped(&self) -> bool {
        matches!(self, PathTaken::UpcallDropped { .. })
    }

    /// Subtables probed on this path (0 for a microflow hit).
    pub fn probes(&self) -> usize {
        match self {
            PathTaken::MicroflowHit => 0,
            PathTaken::MegaflowHit { probes, .. }
            | PathTaken::Upcall { probes, .. }
            | PathTaken::UpcallQueued { probes, .. }
            | PathTaken::UpcallDropped { probes, .. } => *probes,
        }
    }
}

/// Per-packet processing result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessOutcome {
    /// The policy verdict.
    pub verdict: Action,
    /// Destination vport when the verdict permits delivery.
    pub output: Option<u32>,
    /// Which pipeline level resolved the packet.
    pub path: PathTaken,
    /// CPU cycles charged (parse + path) under the switch's cost model.
    pub cycles: u64,
}

/// One deferred upcall resolved by a [`VSwitch::drain_upcalls`] step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedUpcall {
    /// The token handed out by the matching
    /// [`PathTaken::UpcallQueued`].
    pub token: u64,
    /// The packet the verdict applies to.
    pub key: FlowKey,
    /// The handler's outcome: a real verdict, the full
    /// [`PathTaken::Upcall`] path record, and the *handler-side* cycles
    /// (the fast-path share was already charged at enqueue time).
    pub outcome: ProcessOutcome,
}

/// Aggregate switch statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets processed.
    pub packets: u64,
    /// Microflow-cache hits.
    pub microflow_hits: u64,
    /// Megaflow-cache hits.
    pub megaflow_hits: u64,
    /// Slow-path upcalls.
    pub upcalls: u64,
    /// Packets denied by policy (or unroutable).
    pub policy_drops: u64,
    /// Total cycles consumed (packet processing plus costed
    /// control-plane updates; the control share is also tracked
    /// separately in `control_cycles`).
    pub cycles: u64,
    /// Total subtable probes across all fast-path lookups.
    pub subtable_probes: u64,
    /// Control-plane policy updates applied (ACL installs/removals and
    /// pod attaches) — the churn counter the policy-flap detector
    /// watches.
    pub policy_updates: u64,
    /// Cache invalidations that actually flushed state (no-op flushes
    /// on a clean cache are coalesced away and not counted).
    pub cache_flushes: u64,
    /// Megaflow entries discarded by those invalidations.
    pub flushed_megaflows: u64,
    /// Cycles charged for costed control-plane updates (a subset of
    /// `cycles`; zero when every update arrived through the free
    /// build-time setters).
    pub control_cycles: u64,
}

impl SwitchStats {
    /// Mean cycles per packet.
    pub fn avg_cycles(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.cycles as f64 / self.packets as f64
        }
    }

    /// Mean subtable probes per packet (the attack's fingerprint).
    pub fn avg_probes(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.subtable_probes as f64 / self.packets as f64
        }
    }

    /// Fraction of packets resolved at the microflow cache — the other
    /// hot-path health counter the benches record.
    pub fn emc_hit_rate(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.microflow_hits as f64 / self.packets as f64
        }
    }
}

/// One pod attachment: vport + the pod's ingress policy.
#[derive(Debug, Clone)]
struct PodPort {
    vport: u32,
    slowpath: SlowPath,
}

/// Outcome of one costed control-plane update
/// ([`VSwitch::apply_install_acl`] and friends): what changed, what was
/// flushed, and the datapath cycles the update consumed under the
/// switch's [`CostModel`]. The simulator charges `cycles` against the
/// node's tick budget — a flush storm eats the same CPU the packets
/// need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyUpdateOutcome {
    /// Whether the update changed switch state (false e.g. for an ACL
    /// install at an unattached IP).
    pub applied: bool,
    /// Megaflow entries discarded by the triggered invalidation.
    pub flushed_megaflows: usize,
    /// Whether the invalidation was scoped to the updated destination
    /// ([`DpConfig::scoped_invalidation`]) rather than a global flush.
    pub scoped: bool,
    /// Datapath cycles charged for the update.
    pub cycles: u64,
}

/// What one switch crash/restart wiped ([`VSwitch::crash_restart`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestartOutcome {
    /// Installed ACLs lost — each one an unenforced deny policy until
    /// the control plane re-pushes it.
    pub acls_lost: usize,
    /// Cached flow entries (megaflows, or a flat/offload backend's
    /// table) discarded.
    pub flows_lost: usize,
    /// Queued upcalls discarded with the switch process.
    pub upcalls_lost: usize,
    /// Quarantine markings lost (the defense must re-detect).
    pub quarantines_lost: usize,
}

/// An OVS-like virtual switch: shared microflow + megaflow caches in
/// front of per-pod ingress ACL slow paths.
#[derive(Debug)]
pub struct VSwitch {
    config: DpConfig,
    cost: CostModel,
    emc: MicroflowCache,
    mfc: MegaflowCache,
    revalidator: Revalidator,
    /// Destination IP (host order) → pod port.
    routes: HashMap<u32, PodPort>,
    /// Bumped on policy changes / evictions to invalidate the EMC.
    generation: u64,
    /// Whether anything has been cached (EMC insert, megaflow install,
    /// staged install) since the last global flush. A policy change on
    /// a clean cache has nothing to invalidate: the flush is coalesced
    /// away — no clear, no generation bump, no flush cost — which is
    /// what keeps the attach-pod → install-acl setup sequence from
    /// burning a generation per call.
    cache_dirty: bool,
    stats: SwitchStats,
    /// The bounded upcall pipeline (idle under [`PipelineMode::Inline`]).
    pipeline: UpcallQueue,
    /// Destination IPs under quarantine: their megaflow misses are
    /// refused slow-path service (BTreeSet for deterministic listing).
    quarantined: BTreeSet<u32>,
    rng: SplitMix64,
    /// Trace handle (disabled by default — a guaranteed no-op).
    tracer: Tracer,
}

impl VSwitch {
    /// Builds a switch from a configuration, with the default cost model.
    pub fn new(config: DpConfig) -> Self {
        Self::with_cost_model(config, CostModel::default())
    }

    /// Builds a switch with an explicit cost model.
    pub fn with_cost_model(config: DpConfig, cost: CostModel) -> Self {
        let emc = MicroflowCache::new(
            config.emc_entries,
            config.emc_ways,
            config.emc_insert_prob,
            config.seed ^ 0xe3c,
        );
        let mfc = MegaflowCache::new(
            config.flow_limit,
            config.subtable_order,
            config.staged_lookup,
        );
        let revalidator = Revalidator::new(config.revalidator_interval, config.idle_timeout);
        let rng = SplitMix64::new(config.seed ^ 0x575);
        VSwitch {
            config,
            cost,
            emc,
            mfc,
            revalidator,
            routes: HashMap::new(),
            generation: 0,
            cache_dirty: false,
            stats: SwitchStats::default(),
            pipeline: UpcallQueue::default(),
            quarantined: BTreeSet::new(),
            rng,
            tracer: Tracer::disabled(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DpConfig {
        &self.config
    }

    /// Attaches a trace handle: the costed control-plane entry points
    /// record their policy updates and cache flushes through it. The
    /// default (disabled) tracer makes every emission a no-op branch.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    // --- Runtime-mutable knobs -------------------------------------
    //
    // The adaptive defense controller (`pi_detect`) flips mitigations
    // while the switch serves traffic. Each setter keeps the live
    // `DpConfig` in sync, so mutating a fresh switch to a config is
    // observably identical to constructing it with that config (pinned
    // by `tests/adaptive_defense.rs`).

    /// Sets the per-port fair-share quota of the bounded upcall
    /// pipeline at runtime. Returns false (and changes nothing) when
    /// the switch runs the inline pipeline — the quota is a property of
    /// bounded handler service.
    pub fn set_port_quota(&mut self, quota: Option<u32>) -> bool {
        match &mut self.config.pipeline {
            PipelineMode::Bounded(cfg) => {
                cfg.port_quota_per_step = quota;
                true
            }
            PipelineMode::Inline => false,
        }
    }

    /// Switches the slow-path pipeline mode at runtime. Switching away
    /// from a bounded pipeline is refused (returns false) while upcalls
    /// are still queued — the caller must drain first, otherwise the
    /// pending packets would strand with no handler to resolve them.
    /// Bounded→Bounded retunes the live queue/budget/quota knobs
    /// without touching queued work.
    pub fn set_pipeline(&mut self, mode: PipelineMode) -> bool {
        if matches!(mode, PipelineMode::Inline)
            && self.config.pipeline.is_bounded()
            && self.pipeline.total_depth() > 0
        {
            return false;
        }
        self.config.pipeline = mode;
        true
    }

    /// Toggles staged subtable lookup at runtime, retrofitting (or
    /// dropping) the per-subtable stage indexes of the live megaflow
    /// cache.
    pub fn set_staged_lookup(&mut self, enabled: bool) {
        self.config.staged_lookup = enabled;
        self.mfc.set_staged_lookup(enabled);
    }

    /// Changes the revalidator's sweep cadence at runtime, re-arming
    /// its next deadline on the new interval's grid (the smallest grid
    /// point strictly after `now`). The live [`DpConfig`] is kept in
    /// sync.
    pub fn set_revalidator_interval(&mut self, interval: SimTime, now: SimTime) {
        self.config.revalidator_interval = interval;
        self.revalidator.set_interval(interval, now);
    }

    /// When the next revalidator sweep is due.
    pub fn next_revalidation(&self) -> SimTime {
        self.revalidator.next_due()
    }

    /// Switches between global and destination-scoped cache
    /// invalidation at runtime ([`DpConfig::scoped_invalidation`]) —
    /// the control-plane counterpart of the other mitigation knobs.
    /// Takes effect from the next policy update.
    pub fn set_scoped_invalidation(&mut self, scoped: bool) {
        self.config.scoped_invalidation = scoped;
    }

    /// The EMC generation counter — bumped by every effective cache
    /// invalidation, exposed so tests can pin that coalesced no-op
    /// flushes do not burn generations.
    pub fn emc_generation(&self) -> u64 {
        self.generation
    }

    /// Quarantines the destination `ip`: its cached megaflows are
    /// evicted immediately (with the EMC invalidated if anything was
    /// removed) and, until released, its megaflow misses are refused
    /// slow-path service — counted in
    /// [`UpcallStats::quarantine_drops`] and surfaced to callers as
    /// [`PathTaken::UpcallDropped`]. Returns the number of megaflows
    /// evicted.
    ///
    /// This is the offender actuator for the mask-inflation attack:
    /// the megaflows carrying the injected masks are attributable by
    /// `ip_dst` (every megaflow pins it), so eviction removes exactly
    /// the attacker's subtables, and the refusal stops the covert
    /// stream from rebuilding them.
    pub fn quarantine(&mut self, ip: u32) -> usize {
        self.quarantined.insert(ip);
        let evicted = self.mfc.evict_destination(ip);
        if evicted > 0 {
            // Evicted megaflows may back EMC entries.
            self.generation += 1;
        }
        evicted
    }

    /// Lifts the quarantine on `ip`; its traffic reaches the slow path
    /// again. Returns whether it was quarantined.
    pub fn release_quarantine(&mut self, ip: u32) -> bool {
        self.quarantined.remove(&ip)
    }

    /// Whether `ip` is currently quarantined.
    pub fn is_quarantined(&self, ip: u32) -> bool {
        self.quarantined.contains(&ip)
    }

    /// Currently quarantined destinations, ascending.
    pub fn quarantined_destinations(&self) -> Vec<u32> {
        self.quarantined.iter().copied().collect()
    }

    /// The cycle cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Attaches a pod: traffic to `ip` is delivered out of `vport`.
    /// Returns true for a fresh attach (the pod starts with no ACL —
    /// everything allowed); false for a re-attach of an
    /// already-present IP, which re-homes the vport but **preserves
    /// the existing slow path** — a vport move must never silently
    /// replace an installed deny ACL with a permissive one.
    pub fn attach_pod(&mut self, ip: u32, vport: u32) -> bool {
        self.do_attach_pod(ip, vport).0
    }

    fn do_attach_pod(&mut self, ip: u32, vport: u32) -> (bool, usize) {
        self.stats.policy_updates += 1;
        let fresh = match self.routes.get_mut(&ip) {
            Some(port) => {
                port.vport = vport;
                false
            }
            None => {
                self.routes.insert(
                    ip,
                    PodPort {
                        vport,
                        slowpath: SlowPath::permissive(Action::Allow),
                    },
                );
                true
            }
        };
        // A fresh attach may shadow a cached unroutable-deny megaflow
        // for `ip`; a re-attach models OVS's port-change revalidation.
        // Either way the (coalesced) invalidation keeps verdicts sound.
        let flushed = self.invalidate_for(ip);
        (fresh, flushed)
    }

    /// Installs (or replaces) the ingress ACL protecting the pod at
    /// `ip`. This is the CMS's hand-off point — and the attacker's
    /// (§2: "the attacker installs ACLs at the virtual ports").
    ///
    /// Returns false if no pod is attached at `ip`.
    pub fn install_acl(&mut self, ip: u32, table: FlowTable) -> bool {
        self.do_install_acl(ip, table).0
    }

    fn do_install_acl(&mut self, ip: u32, table: FlowTable) -> (bool, usize) {
        let trie_fields = self.config.trie_fields.clone();
        let installed = match self.routes.get_mut(&ip) {
            Some(port) => {
                port.slowpath = SlowPath::new(table, &trie_fields, Action::Deny);
                true
            }
            None => false,
        };
        if !installed {
            return (false, 0);
        }
        self.stats.policy_updates += 1;
        (true, self.invalidate_for(ip))
    }

    /// Removes the ACL at `ip` (pod reverts to allow-all).
    pub fn remove_acl(&mut self, ip: u32) -> bool {
        self.do_remove_acl(ip).0
    }

    fn do_remove_acl(&mut self, ip: u32) -> (bool, usize) {
        let removed = match self.routes.get_mut(&ip) {
            Some(port) => {
                port.slowpath = SlowPath::permissive(Action::Allow);
                true
            }
            None => false,
        };
        if !removed {
            return (false, 0);
        }
        self.stats.policy_updates += 1;
        (true, self.invalidate_for(ip))
    }

    // --- Costed control-plane entry points -------------------------
    //
    // The timed control plane (`pi_cms::ControlPlane`, driven through
    // `pi_sim::NodeCell`) applies updates through these wrappers, which
    // price each update — fixed handling plus per-flushed-entry
    // teardown — so a flush storm competes with packets for the same
    // cycle budget. The plain setters above stay free: they model
    // build-time topology assembly, before the simulated clock starts.

    /// [`VSwitch::install_acl`], costed: counts the flush and charges
    /// [`CostModel::control_update_cycles`] against the switch.
    pub fn apply_install_acl(&mut self, ip: u32, table: FlowTable) -> PolicyUpdateOutcome {
        let (applied, flushed) = self.do_install_acl(ip, table);
        self.charge_update(0, applied, flushed)
    }

    /// [`VSwitch::remove_acl`], costed.
    pub fn apply_remove_acl(&mut self, ip: u32) -> PolicyUpdateOutcome {
        let (applied, flushed) = self.do_remove_acl(ip);
        self.charge_update(1, applied, flushed)
    }

    /// [`VSwitch::attach_pod`], costed. `applied` reports a *fresh*
    /// attach (false = vport re-home preserving the slow path).
    pub fn apply_attach_pod(&mut self, ip: u32, vport: u32) -> PolicyUpdateOutcome {
        let (fresh, flushed) = self.do_attach_pod(ip, vport);
        self.charge_update(2, fresh, flushed)
    }

    fn charge_update(
        &mut self,
        op: u8,
        applied: bool,
        flushed_megaflows: usize,
    ) -> PolicyUpdateOutcome {
        let cycles = self.cost.control_update_cycles(flushed_megaflows);
        self.stats.cycles += cycles;
        self.stats.control_cycles += cycles;
        let scoped = self.config.scoped_invalidation;
        self.tracer
            .emit_policy_update(op, cycles, flushed_megaflows as u32, scoped, applied);
        PolicyUpdateOutcome {
            applied,
            flushed_megaflows,
            scoped,
            cycles,
        }
    }

    /// Invalidates cached state after a policy change at `ip`.
    ///
    /// * Clean cache (nothing inserted since the last global flush):
    ///   nothing to invalidate — the no-op is coalesced away without a
    ///   generation bump, so repeated setup calls can never exhaust
    ///   the generation counter.
    /// * `scoped_invalidation`: only the megaflows pinned to `ip` are
    ///   evicted (sound — every megaflow this pipeline generates pins
    ///   `ip_dst`), and only the EMC entries addressed to `ip` are
    ///   dropped ([`MicroflowCache::evict_destination`] — exact-match
    ///   entries know their destination). Benign flows towards other
    ///   pods keep both their megaflows *and* their microflow hits
    ///   across the update.
    /// * Global (the OVS behaviour the paper attacks): the whole
    ///   megaflow cache is cleared and the EMC generation bumped.
    ///
    /// Staged installs are discarded either way — they were generated
    /// under the old policy; landing them would cache stale verdicts.
    /// Queued upcalls stay: a handler classifies them under whatever
    /// policy is live when it reaches them, exactly like real OVS.
    fn invalidate_for(&mut self, ip: u32) -> usize {
        if !self.cache_dirty {
            return 0;
        }
        self.pipeline.discard_installs();
        self.stats.cache_flushes += 1;
        let flushed = if self.config.scoped_invalidation {
            self.emc.evict_destination(ip);
            self.mfc.evict_destination(ip)
        } else {
            let all = self.mfc.len();
            self.mfc.clear();
            self.cache_dirty = false;
            self.generation += 1;
            all
        };
        self.stats.flushed_megaflows += flushed as u64;
        flushed
    }

    // --- Crash/restart ---------------------------------------------

    /// Crashes and restarts the switch process: both flow caches,
    /// queued upcalls, staged installs, quarantine markings and every
    /// installed ACL are lost (ports revert to allow-all — the
    /// vanished deny rules are the security hole reconciliation
    /// exists to close). Port attachments survive (the node agent
    /// re-plumbs vports on respawn) and so do the lifetime `stats` —
    /// they are the node agent's accounting, not switch memory. The
    /// fixed restart price ([`CostModel::restart_fixed`]) is charged by
    /// the caller against the node's budget, not here.
    pub fn crash_restart(&mut self) -> RestartOutcome {
        let flows_lost = self.mfc.len();
        if self.cache_dirty {
            self.mfc.clear();
            self.generation += 1; // EMC entries die by lazy generation check.
            self.cache_dirty = false;
        }
        let upcalls_lost = self.pipeline.crash_clear();
        let quarantines_lost = self.quarantined.len();
        self.quarantined.clear();
        let mut acls_lost = 0;
        for port in self.routes.values_mut() {
            if port.slowpath.default_action() == Action::Deny {
                port.slowpath = SlowPath::permissive(Action::Allow);
                acls_lost += 1;
            }
        }
        RestartOutcome {
            acls_lost,
            flows_lost,
            upcalls_lost,
            quarantines_lost,
        }
    }

    /// Destination IPs with an installed (default-deny) ACL, ascending
    /// — the switch-reported state the reconciliation loop diffs
    /// against the CMS's desired state.
    pub fn installed_acl_ips(&self) -> Vec<u32> {
        let mut ips: Vec<u32> = self
            .routes
            .iter()
            .filter(|(_, port)| port.slowpath.default_action() == Action::Deny)
            .map(|(ip, _)| *ip)
            .collect();
        ips.sort_unstable();
        ips
    }

    /// The megaflow mask count — Fig. 3's right-hand axis.
    pub fn mask_count(&self) -> usize {
        self.mfc.mask_count()
    }

    /// The megaflow entry count.
    pub fn megaflow_count(&self) -> usize {
        self.mfc.len()
    }

    /// Switch statistics so far.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Resets packet/cycle counters (not the caches).
    pub fn reset_stats(&mut self) {
        self.stats = SwitchStats::default();
    }

    /// EMC statistics.
    pub fn emc_stats(&self) -> crate::emc::EmcStats {
        self.emc.stats()
    }

    /// MFC statistics.
    pub fn mfc_stats(&self) -> crate::megaflow::MfcStats {
        self.mfc.stats()
    }

    /// Read access to the megaflow cache for diagnostics.
    pub fn megaflows(&self) -> &MegaflowCache {
        &self.mfc
    }

    /// Runs the revalidator if due (call once per simulated tick).
    ///
    /// Under the bounded pipeline the revalidator shares the sweep
    /// clock with handler draining: any installs still staged (from an
    /// interrupted or external drain) are flushed first, so a sweep
    /// never races a half-landed install batch — it always sees the
    /// cache as of the last completed handler step.
    pub fn revalidate(&mut self, now: SimTime) -> Option<RevalidatorReport> {
        self.flush_staged_installs();
        let report = self.revalidator.maybe_sweep(&mut self.mfc, now);
        if let Some(r) = &report {
            if r.evicted_idle > 0 {
                // Conservative EMC invalidation: evicted megaflows may
                // back EMC entries.
                self.generation += 1;
            }
        }
        report
    }

    /// The earliest future instant at which the switch's background
    /// machinery can change observable state without a new packet
    /// arriving. `Some(now)` means "busy right now" (queued upcalls,
    /// staged installs, or handler-budget debt that an empty drain step
    /// would repay); with only cached megaflows the next observable
    /// change is the revalidator sweep that could evict them; `None`
    /// means fully quiescent — [`VSwitch::revalidate`] and
    /// [`VSwitch::drain_upcalls`] are provable no-ops at any future
    /// time. Used by the event-driven engines to skip idle ticks.
    pub fn next_background_event(&self, now: SimTime) -> Option<SimTime> {
        if self.pipeline.total_depth() > 0
            || self.pipeline.staged_installs() > 0
            || self.pipeline.handler_carry() < 0
        {
            return Some(now);
        }
        if !self.mfc.is_empty() {
            return Some(self.revalidator.next_due());
        }
        None
    }

    /// Processes a raw frame arriving on `in_port`.
    pub fn process_frame(
        &mut self,
        frame: &[u8],
        in_port: u32,
        now: SimTime,
    ) -> pi_core::Result<ProcessOutcome> {
        let key = extract_flow_key(frame, in_port)?;
        Ok(self.process(&key, now))
    }

    /// Processes a pre-parsed flow key (the simulator's hot path — the
    /// parse cost is still charged).
    pub fn process(&mut self, key: &FlowKey, now: SimTime) -> ProcessOutcome {
        self.process_with(key, &KeyWords::of(key), now)
    }

    /// Maximum packets hashed per [`VSwitch::process_batch`] phase —
    /// OVS's `NETDEV_MAX_BURST`.
    pub const BATCH_SIZE: usize = 32;

    /// Processes a run of pre-parsed flow keys, amortising the hash
    /// work: each sub-batch of up to [`VSwitch::BATCH_SIZE`] packets has
    /// its [`KeyWords`] extracted in one pass before any lookup runs, and
    /// every pipeline level (EMC set index, every subtable's masked
    /// hash) derives from those words — nothing allocates and no key is
    /// re-hashed per level.
    ///
    /// Verdicts, stats and cache mutations are **exactly** those of
    /// `keys.len()` sequential [`VSwitch::process`] calls (pinned by
    /// `tests/batch_equivalence.rs`): lookups still execute in packet
    /// order, so a packet can hit an EMC entry promoted by an earlier
    /// packet of the same batch.
    ///
    /// `sink` receives each packet's index and outcome and returns
    /// whether to continue; returning `false` stops the batch (the
    /// simulator's per-tick cycle budget), leaving later packets
    /// untouched. Returns the number of packets processed.
    // audit: hotpath
    pub fn process_batch(
        &mut self,
        keys: &[FlowKey],
        now: SimTime,
        mut sink: impl FnMut(usize, ProcessOutcome) -> bool,
    ) -> usize {
        let mut words = [KeyWords::ZERO; Self::BATCH_SIZE];
        let mut done = 0;
        for (chunk_idx, chunk) in keys.chunks(Self::BATCH_SIZE).enumerate() {
            // Phase 1: hash the whole sub-batch (pure — no stats, no
            // cache effects, so an early sink stop never over-counts).
            // An early stop discards at most 31 word extractions
            // (~tens of cycles each) — noise next to the thousands of
            // cycles per processed packet that caused the stop.
            for (w, key) in words.iter_mut().zip(chunk) {
                *w = KeyWords::of(key);
            }
            // Phase 2: per-packet lookups in arrival order.
            for (i, key) in chunk.iter().enumerate() {
                let outcome = self.process_with(key, &words[i], now);
                done += 1;
                if !sink(chunk_idx * Self::BATCH_SIZE + i, outcome) {
                    return done;
                }
            }
        }
        done
    }

    /// The shared per-packet pipeline, with the key's words precomputed.
    fn process_with(&mut self, key: &FlowKey, words: &KeyWords, now: SimTime) -> ProcessOutcome {
        self.stats.packets += 1;
        let hash = words.full_hash();

        // Level 1: microflow cache.
        let emc_probed = self.config.emc_enabled;
        if emc_probed {
            if let Some(action) = self.emc.lookup_hashed(hash, key, self.generation, now) {
                return self.finish(action, PathTaken::MicroflowHit, key);
            }
        }

        // Level 2: megaflow cache.
        let out = self.mfc.lookup_with(key, words, now);
        self.stats.subtable_probes += out.probes as u64;
        if let Some(action) = out.value {
            let emc_inserted = emc_probed
                && self
                    .emc
                    .insert_hashed(hash, key, action, self.generation, now);
            self.cache_dirty |= emc_inserted;
            let path = PathTaken::MegaflowHit {
                probes: out.probes,
                stage_checks: out.stage_checks,
                emc_probed,
                emc_inserted,
            };
            return self.finish(action, path, key);
        }

        // Quarantine gate: a miss towards a quarantined destination is
        // refused slow-path service outright — no classification, no
        // megaflow, no queue slot, no handler cycles. Only the
        // fast-path share of the miss was spent. This is what starves
        // an offender's covert stream of its amplification.
        if !self.quarantined.is_empty() && self.quarantined.contains(&key.ip_dst) {
            self.pipeline.note_quarantine_drop();
            let path = PathTaken::UpcallDropped {
                probes: out.probes,
                stage_checks: out.stage_checks,
                emc_probed,
            };
            let cycles = self.cost.packet_cycles(&path);
            self.stats.cycles += cycles;
            return ProcessOutcome {
                verdict: Action::Controller,
                output: None,
                path,
                cycles,
            };
        }

        // Level 3: the slow path. Under the bounded pipeline the miss is
        // deferred onto the destination port's upcall queue (tail-drop
        // when full); only the fast-path share of the work is charged
        // here — the handler share lands in `drain_upcalls`.
        if let PipelineMode::Bounded(cfg) = self.config.pipeline {
            let queue = self
                .routes
                .get(&key.ip_dst)
                .map(|p| p.vport)
                .unwrap_or(UNROUTABLE_QUEUE);
            let path = match self.pipeline.try_enqueue(
                queue,
                crate::upcall::queue_capacity_of(queue, cfg.queue_capacity),
                key,
                hash,
                out.probes,
                out.stage_checks,
                emc_probed,
            ) {
                Some(token) => PathTaken::UpcallQueued {
                    probes: out.probes,
                    stage_checks: out.stage_checks,
                    emc_probed,
                    token,
                },
                None => PathTaken::UpcallDropped {
                    probes: out.probes,
                    stage_checks: out.stage_checks,
                    emc_probed,
                },
            };
            let cycles = self.cost.packet_cycles(&path);
            self.stats.cycles += cycles;
            // Not a policy drop and not (yet) an upcall: the pending /
            // dropped packet only shows up in the upcall statistics.
            return ProcessOutcome {
                verdict: Action::Controller,
                output: None,
                path,
                cycles,
            };
        }

        // Inline slow path: route on ip_dst, then the pod's ingress ACL.
        let (action, acl_mask, rules_examined) = match self.routes.get(&key.ip_dst) {
            Some(port) => {
                let up = port.slowpath.process_upcall(key);
                (up.action, *up.megaflow.mask(), up.rules_examined)
            }
            // Unroutable destination: drop; the megaflow needs only the
            // destination address to stay sound.
            None => (Action::Deny, pi_core::FlowMask::WILDCARD, 0),
        };
        // Routing consulted the destination IP: pin it exactly.
        let mut mask = acl_mask;
        mask.unwildcard(Field::IpDst, Field::IpDst.full_mask());
        let megaflow = pi_core::MaskedKey::new(*key, mask);

        let installed = matches!(
            self.mfc.install(megaflow, action, now),
            InstallOutcome::Installed
        );
        let emc_inserted = emc_probed
            && self
                .emc
                .insert_hashed(hash, key, action, self.generation, now);
        self.cache_dirty |= installed || emc_inserted;
        let path = PathTaken::Upcall {
            probes: out.probes,
            stage_checks: out.stage_checks,
            rules_examined,
            installed,
            emc_probed,
            emc_inserted,
        };
        self.finish(action, path, key)
    }

    fn finish(&mut self, verdict: Action, path: PathTaken, key: &FlowKey) -> ProcessOutcome {
        match &path {
            PathTaken::MicroflowHit => self.stats.microflow_hits += 1,
            PathTaken::MegaflowHit { .. } => self.stats.megaflow_hits += 1,
            PathTaken::Upcall { .. } => self.stats.upcalls += 1,
            PathTaken::UpcallQueued { .. } | PathTaken::UpcallDropped { .. } => {
                unreachable!("deferred paths return before finish()")
            }
        }
        let output = if verdict.permits() {
            self.routes.get(&key.ip_dst).map(|p| p.vport)
        } else {
            None
        };
        if output.is_none() {
            self.stats.policy_drops += 1;
        }
        let cycles = self.cost.packet_cycles(&path);
        self.stats.cycles += cycles;
        ProcessOutcome {
            verdict,
            output,
            path,
            cycles,
        }
    }

    /// Runs one handler step of the bounded upcall pipeline: port
    /// queues are serviced **deepest backlog first** (batch-greedy
    /// handlers drain the busiest socket — the wakeup-amortising
    /// discipline that structurally starves sparse ports under a
    /// flood), FIFO within each queue, under the configured per-step
    /// cycle budget. `port_quota_per_step` caps each port's resolutions
    /// per step — the fair-share fix for exactly that starvation; an
    /// over-quota port keeps its backlog queued. `sink` receives each
    /// [`ResolvedUpcall`]. Megaflow installs generated during the step
    /// are batched and land at the **end** of the step — packets
    /// processed between a miss and this flush still miss (and upcall),
    /// like real OVS.
    ///
    /// Budget semantics mirror the simulator's per-tick drain: an
    /// upcall is resolved iff the budget is still positive when its turn
    /// comes, and an overrun carries into the next step as debt. Returns
    /// the number of upcalls resolved. No-op under
    /// [`PipelineMode::Inline`].
    // audit: hotpath
    pub fn drain_upcalls(&mut self, now: SimTime, mut sink: impl FnMut(ResolvedUpcall)) -> usize {
        let PipelineMode::Bounded(cfg) = self.config.pipeline else {
            return 0;
        };
        let mut budget = self.pipeline.begin_step(&cfg);
        let mut handled = 0usize;
        'step: for queue in self.pipeline.service_order() {
            let mut served = 0u32;
            while budget > 0 {
                if cfg.port_quota_per_step.is_some_and(|q| served >= q) {
                    if self.pipeline.depth_of(queue) > 0 {
                        self.pipeline.note_quota_deferral();
                    }
                    break;
                }
                let Some(pending) = self.pipeline.pop_from(queue) else {
                    break;
                };
                let resolved = self.resolve_upcall(pending, now);
                budget -= resolved.outcome.cycles as i64;
                served += 1;
                handled += 1;
                sink(resolved);
            }
            if budget <= 0 {
                break 'step;
            }
        }
        self.pipeline.end_step(budget);
        self.flush_staged_installs();
        handled
    }

    /// Services one pending upcall: full classification against the
    /// destination pod's ACL, megaflow generation (staged, not yet
    /// installed), and the EMC promotion.
    ///
    /// A pending upcall whose destination was quarantined *after* it
    /// was queued is refused here instead: no classification, no
    /// install, no handler cycles — otherwise the backlog queued
    /// before the quarantine would re-install the offender's
    /// megaflows right after [`VSwitch::quarantine`] evicted them.
    fn resolve_upcall(&mut self, pending: PendingUpcall, now: SimTime) -> ResolvedUpcall {
        let key = pending.key;
        if !self.quarantined.is_empty() && self.quarantined.contains(&key.ip_dst) {
            self.pipeline.note_quarantine_drop();
            let path = PathTaken::UpcallDropped {
                probes: pending.probes,
                stage_checks: pending.stage_checks,
                emc_probed: pending.emc_probed,
            };
            return ResolvedUpcall {
                token: pending.token,
                key,
                outcome: ProcessOutcome {
                    verdict: Action::Controller,
                    output: None,
                    path,
                    // The fast-path share was charged at enqueue;
                    // refusing costs the handler nothing.
                    cycles: 0,
                },
            };
        }
        let (action, acl_mask, rules_examined) = match self.routes.get(&key.ip_dst) {
            Some(port) => {
                let up = port.slowpath.process_upcall(&key);
                (up.action, *up.megaflow.mask(), up.rules_examined)
            }
            None => (Action::Deny, pi_core::FlowMask::WILDCARD, 0),
        };
        let mut mask = acl_mask;
        mask.unwildcard(Field::IpDst, Field::IpDst.full_mask());
        let megaflow = pi_core::MaskedKey::new(key, mask);

        // Predict what the end-of-step flush will do, mirroring
        // `MegaflowCache::install` against the cache *plus* the installs
        // already staged this step.
        let already = self.mfc.get(&megaflow).is_some() || self.pipeline.install_staged(&megaflow);
        let installed =
            !already && self.mfc.len() + self.pipeline.fresh_staged() < self.config.flow_limit;
        self.pipeline
            .stage_install(megaflow, action, now, installed);
        // Staged installs land at the step-end flush: the cache is no
        // longer clean the moment one exists.
        self.cache_dirty = true;

        let emc_inserted = pending.emc_probed
            && self
                .emc
                .insert_hashed(pending.hash, &key, action, self.generation, now);
        let path = PathTaken::Upcall {
            probes: pending.probes,
            stage_checks: pending.stage_checks,
            rules_examined,
            installed,
            emc_probed: pending.emc_probed,
            emc_inserted,
        };
        self.stats.upcalls += 1;
        let output = if action.permits() {
            self.routes.get(&key.ip_dst).map(|p| p.vport)
        } else {
            None
        };
        if output.is_none() {
            self.stats.policy_drops += 1;
        }
        let cycles = self
            .cost
            .handler_cycles(rules_examined, installed, emc_inserted);
        self.stats.cycles += cycles;
        let wait = self
            .pipeline
            .step()
            .saturating_sub(1)
            .saturating_sub(pending.enqueued_step);
        self.pipeline.note_resolved(pending.queue, wait);
        ResolvedUpcall {
            token: pending.token,
            key,
            outcome: ProcessOutcome {
                verdict: action,
                output,
                path,
                cycles,
            },
        }
    }

    /// Lands the step's batched megaflow installs. Called at the end of
    /// every drain step and defensively before a revalidator sweep.
    fn flush_staged_installs(&mut self) {
        for staged in self.pipeline.take_installs() {
            let outcome = self.mfc.install(staged.megaflow, staged.action, staged.at);
            // The resolution-time prediction (reported as `installed`
            // in the packet's outcome) must agree with what the flush
            // actually did — a divergence means the prediction logic
            // no longer mirrors `MegaflowCache::install`.
            debug_assert_eq!(
                matches!(outcome, InstallOutcome::Installed),
                staged.fresh,
                "staged-install prediction diverged from the flush outcome"
            );
        }
    }

    /// Aggregate upcall-pipeline counters (all zero under
    /// [`PipelineMode::Inline`]).
    pub fn upcall_stats(&self) -> UpcallStats {
        self.pipeline.stats()
    }

    /// Per-port upcall-pipeline counters, ascending queue-id order.
    /// The [`UNROUTABLE_QUEUE`] id collects destination-less upcalls.
    pub fn upcall_port_stats(&self) -> Vec<(u32, PortUpcallStats)> {
        self.pipeline.port_stats()
    }

    /// Total pending upcalls across all port queues.
    pub fn upcall_queue_depth(&self) -> usize {
        self.pipeline.total_depth()
    }

    /// Pending upcalls on one port's queue.
    pub fn upcall_queue_depth_of(&self, queue: u32) -> usize {
        self.pipeline.depth_of(queue)
    }

    /// Deterministic tie-break helper for tests that need switch-side
    /// randomness (kept so config seeding covers all state).
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_classifier::table::whitelist_with_default_deny;
    use pi_core::{FlowMask, MaskedKey};

    const POD_IP: [u8; 4] = [10, 0, 0, 99];
    const POD_VPORT: u32 = 3;

    /// Pod at 10.0.0.99:vport3 with "allow from 10.0.0.0/8, deny rest".
    fn switch_with_fig2_acl() -> VSwitch {
        let mut sw = VSwitch::new(DpConfig {
            trie_fields: vec![Field::IpSrc],
            ..DpConfig::default()
        });
        sw.attach_pod(u32::from_be_bytes(POD_IP), POD_VPORT);
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        );
        sw.install_acl(
            u32::from_be_bytes(POD_IP),
            whitelist_with_default_deny(&[allow]),
        );
        sw
    }

    fn pkt(src: [u8; 4], tp_src: u16) -> FlowKey {
        FlowKey::tcp(src, POD_IP, tp_src, 5201)
    }

    #[test]
    fn first_packet_upcalls_then_microflow_hits() {
        let mut sw = switch_with_fig2_acl();
        let t = SimTime::from_millis(1);
        let p = pkt([10, 1, 1, 1], 1000);
        let o1 = sw.process(&p, t);
        assert!(o1.path.is_upcall());
        assert_eq!(o1.verdict, Action::Allow);
        assert_eq!(o1.output, Some(POD_VPORT));
        let o2 = sw.process(&p, t + SimTime::from_millis(1));
        assert!(o2.path.is_microflow());
        assert!(o2.cycles < o1.cycles);
        let s = sw.stats();
        assert_eq!(s.upcalls, 1);
        assert_eq!(s.microflow_hits, 1);
        assert_eq!(s.packets, 2);
    }

    #[test]
    fn crash_restart_wipes_caches_acls_and_quarantines_but_not_routes() {
        let mut sw = switch_with_fig2_acl();
        let ip = u32::from_be_bytes(POD_IP);
        let t = SimTime::from_millis(1);
        sw.process(&pkt([10, 1, 1, 1], 1000), t);
        sw.quarantine(0xdead);
        assert_eq!(sw.installed_acl_ips(), vec![ip]);
        assert!(sw.megaflow_count() > 0);
        let stats_before = sw.stats();

        let out = sw.crash_restart();
        assert_eq!(out.acls_lost, 1);
        assert!(out.flows_lost > 0);
        assert_eq!(out.quarantines_lost, 1);
        assert!(sw.installed_acl_ips().is_empty());
        assert_eq!(sw.megaflow_count(), 0);
        assert!(!sw.is_quarantined(0xdead));
        assert_eq!(sw.stats(), stats_before, "lifetime counters survive");

        // The vanished deny ACL is the vulnerability: a previously
        // denied source is now delivered.
        let o = sw.process(&pkt([99, 1, 1, 1], 1000), t + SimTime::from_millis(1));
        assert_eq!(o.verdict, Action::Allow, "deny policy silently gone");
        assert_eq!(o.output, Some(POD_VPORT), "route survived the crash");

        // Idempotent: a second crash on the already-wiped switch loses
        // nothing more.
        assert_eq!(sw.crash_restart().acls_lost, 0);
    }

    #[test]
    fn same_megaflow_different_key_hits_megaflow() {
        let mut sw = switch_with_fig2_acl();
        let t = SimTime::from_millis(1);
        sw.process(&pkt([10, 1, 1, 1], 1000), t);
        // Different host, same /8 and wildcarded ports: EMC misses
        // (different exact key) but the /8 megaflow matches.
        let o = sw.process(&pkt([10, 2, 2, 2], 2000), t);
        assert!(o.path.is_megaflow());
        assert_eq!(o.verdict, Action::Allow);
    }

    #[test]
    fn deny_verdicts_counted_as_policy_drops() {
        let mut sw = switch_with_fig2_acl();
        let o = sw.process(&pkt([99, 1, 1, 1], 1000), SimTime::ZERO);
        assert_eq!(o.verdict, Action::Deny);
        assert_eq!(o.output, None);
        assert_eq!(sw.stats().policy_drops, 1);
    }

    #[test]
    fn fig2b_masks_accumulate_per_divergence_depth() {
        // Feeding the 8 complement packets of Fig. 2b (first-octet
        // divergence at depths 1..8) plus one allow packet produces
        // exactly 8 distinct megaflow masks (the allow /8 mask equals the
        // depth-8 deny mask).
        let mut sw = switch_with_fig2_acl();
        let t = SimTime::ZERO;
        let first_octets = [128u8, 64, 32, 16, 0, 12, 8, 11]; // depths 1..8
        for o in first_octets {
            sw.process(&pkt([o, 0, 0, 1], 1), t);
        }
        sw.process(&pkt([10, 0, 0, 1], 1), t); // allow
        assert_eq!(sw.mask_count(), 8, "Fig. 2b: 8 masks");
        assert_eq!(sw.megaflow_count(), 9, "Fig. 2b: 9 entries");
    }

    #[test]
    fn unroutable_destination_denies_without_polluting() {
        let mut sw = switch_with_fig2_acl();
        let stray = FlowKey::tcp([10, 1, 1, 1], [172, 16, 0, 1], 1, 1);
        let o = sw.process(&stray, SimTime::ZERO);
        assert_eq!(o.verdict, Action::Deny);
        // The unroutable megaflow pins ip_dst only — one extra mask.
        assert_eq!(sw.mask_count(), 1);
        // And it must not swallow traffic to the real pod.
        let o2 = sw.process(&pkt([10, 1, 1, 1], 1), SimTime::ZERO);
        assert_eq!(o2.verdict, Action::Allow);
    }

    #[test]
    fn pod_without_acl_allows_everything_with_one_mask() {
        let mut sw = VSwitch::new(DpConfig::default());
        sw.attach_pod(u32::from_be_bytes([10, 0, 0, 5]), 9);
        let p = FlowKey::tcp([1, 2, 3, 4], [10, 0, 0, 5], 7, 8);
        let q = FlowKey::udp([9, 9, 9, 9], [10, 0, 0, 5], 53, 53);
        assert_eq!(sw.process(&p, SimTime::ZERO).verdict, Action::Allow);
        assert_eq!(sw.process(&q, SimTime::ZERO).verdict, Action::Allow);
        assert_eq!(sw.mask_count(), 1, "single ip_dst-only mask");
        assert_eq!(sw.megaflow_count(), 1);
    }

    #[test]
    fn acl_install_flushes_caches() {
        let mut sw = switch_with_fig2_acl();
        let p = pkt([10, 1, 1, 1], 1000);
        sw.process(&p, SimTime::ZERO);
        assert_eq!(sw.megaflow_count(), 1);
        // Replace the ACL with deny-everything.
        assert!(sw.install_acl(u32::from_be_bytes(POD_IP), whitelist_with_default_deny(&[])));
        assert_eq!(sw.megaflow_count(), 0);
        let o = sw.process(&p, SimTime::ZERO);
        assert!(o.path.is_upcall(), "EMC must not serve stale verdicts");
        assert_eq!(o.verdict, Action::Deny);
    }

    #[test]
    fn remove_acl_restores_allow_all() {
        let mut sw = switch_with_fig2_acl();
        let denied = pkt([99, 1, 1, 1], 1);
        assert_eq!(sw.process(&denied, SimTime::ZERO).verdict, Action::Deny);
        assert!(sw.remove_acl(u32::from_be_bytes(POD_IP)));
        assert_eq!(sw.process(&denied, SimTime::ZERO).verdict, Action::Allow);
        assert!(!sw.remove_acl(0xdead_beef));
    }

    #[test]
    fn install_acl_on_unknown_ip_fails() {
        let mut sw = VSwitch::new(DpConfig::default());
        assert!(!sw.install_acl(0x0a000001, whitelist_with_default_deny(&[])));
    }

    #[test]
    fn revalidation_evicts_idle_and_invalidates_emc() {
        let mut sw = switch_with_fig2_acl();
        let p = pkt([10, 1, 1, 1], 1000);
        sw.process(&p, SimTime::ZERO);
        assert_eq!(sw.megaflow_count(), 1);
        // 15 s later, the flow has idled out (timeout 10 s).
        let report = sw.revalidate(SimTime::from_secs(15)).unwrap();
        assert_eq!(report.evicted_idle, 1);
        assert_eq!(sw.megaflow_count(), 0);
        let o = sw.process(&p, SimTime::from_secs(15));
        assert!(o.path.is_upcall(), "EMC generation must have advanced");
    }

    #[test]
    fn process_frame_parses_then_processes() {
        let mut sw = switch_with_fig2_acl();
        let key = pkt([10, 3, 3, 3], 777);
        let frame = pi_packet::PacketBuilder::new().build(&key).unwrap();
        let o = sw.process_frame(&frame, 1, SimTime::ZERO).unwrap();
        assert_eq!(o.verdict, Action::Allow);
        assert!(sw.process_frame(&frame[..7], 1, SimTime::ZERO).is_err());
    }

    #[test]
    fn cycles_accumulate_in_stats() {
        let mut sw = switch_with_fig2_acl();
        let p = pkt([10, 1, 1, 1], 1000);
        let o1 = sw.process(&p, SimTime::ZERO);
        let o2 = sw.process(&p, SimTime::ZERO);
        assert_eq!(sw.stats().cycles, o1.cycles + o2.cycles);
        assert!(sw.stats().avg_cycles() > 0.0);
        sw.reset_stats();
        assert_eq!(sw.stats().packets, 0);
    }

    #[test]
    fn emc_disabled_paths_skip_microflow() {
        let mut sw = VSwitch::new(DpConfig {
            emc_enabled: false,
            trie_fields: vec![Field::IpSrc],
            ..DpConfig::default()
        });
        sw.attach_pod(u32::from_be_bytes(POD_IP), POD_VPORT);
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        );
        sw.install_acl(
            u32::from_be_bytes(POD_IP),
            whitelist_with_default_deny(&[allow]),
        );
        let p = pkt([10, 1, 1, 1], 1000);
        sw.process(&p, SimTime::ZERO);
        let o = sw.process(&p, SimTime::ZERO);
        assert!(o.path.is_megaflow(), "no EMC ⇒ repeat packets hit MFC");
        match o.path {
            PathTaken::MegaflowHit { emc_probed, .. } => assert!(!emc_probed),
            _ => unreachable!(),
        }
    }

    fn bounded_switch(cfg: crate::upcall::UpcallPipelineConfig) -> VSwitch {
        let mut sw = VSwitch::new(DpConfig {
            trie_fields: vec![Field::IpSrc],
            pipeline: PipelineMode::Bounded(cfg),
            ..DpConfig::default()
        });
        sw.attach_pod(u32::from_be_bytes(POD_IP), POD_VPORT);
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        );
        sw.install_acl(
            u32::from_be_bytes(POD_IP),
            whitelist_with_default_deny(&[allow]),
        );
        sw
    }

    #[test]
    fn bounded_miss_defers_then_resolves() {
        let mut sw = bounded_switch(crate::upcall::UpcallPipelineConfig::unbounded());
        let t = SimTime::from_millis(1);
        let p = pkt([10, 1, 1, 1], 1000);
        let o = sw.process(&p, t);
        assert!(o.path.is_queued());
        assert_eq!(o.verdict, Action::Controller, "placeholder verdict");
        assert_eq!(o.output, None);
        assert_eq!(sw.stats().upcalls, 0, "not an upcall until resolved");
        assert_eq!(sw.upcall_queue_depth_of(POD_VPORT), 1);
        let mut resolved = Vec::new();
        assert_eq!(sw.drain_upcalls(t, |r| resolved.push(r)), 1);
        assert_eq!(resolved[0].outcome.verdict, Action::Allow);
        assert_eq!(resolved[0].outcome.output, Some(POD_VPORT));
        assert!(resolved[0].outcome.path.is_upcall());
        assert_eq!(sw.stats().upcalls, 1);
        assert_eq!(sw.megaflow_count(), 1, "batched install landed at step end");
        // The next packet of the flow is now a cache hit.
        let o2 = sw.process(&p, t + SimTime::from_millis(1));
        assert!(o2.path.is_microflow());
    }

    #[test]
    fn same_step_packets_of_one_flow_all_upcall_then_dedup() {
        // The miss-to-install window: until the step's install flush,
        // every packet of the flow re-upcalls; the batch dedups into a
        // single fresh install (the rest report installed=false).
        let mut sw = bounded_switch(crate::upcall::UpcallPipelineConfig::unbounded());
        let t = SimTime::from_millis(1);
        let p = pkt([10, 1, 1, 1], 1000);
        // Disable the EMC promotion's interference by using distinct
        // exact keys that share one megaflow (/8 allow).
        let q = pkt([10, 2, 2, 2], 2000);
        assert!(sw.process(&p, t).path.is_queued());
        assert!(sw.process(&q, t).path.is_queued(), "install not yet landed");
        let mut installs = Vec::new();
        sw.drain_upcalls(t, |r| {
            if let PathTaken::Upcall { installed, .. } = r.outcome.path {
                installs.push(installed);
            }
        });
        assert_eq!(installs, vec![true, false], "one fresh install, one dedup");
        assert_eq!(sw.megaflow_count(), 1);
        assert_eq!(sw.mfc_stats().installs, 1);
    }

    #[test]
    fn full_queue_tail_drops_with_distinct_counters() {
        let mut sw = bounded_switch(crate::upcall::UpcallPipelineConfig {
            queue_capacity: 2,
            handler_cycles_per_step: u64::MAX,
            port_quota_per_step: None,
        });
        let t = SimTime::from_millis(1);
        for i in 0..5u16 {
            let o = sw.process(&pkt([10, 9, (i >> 8) as u8, i as u8], 7000 + i), t);
            if i < 2 {
                assert!(o.path.is_queued());
            } else {
                assert!(o.path.is_upcall_dropped(), "tail drop at capacity");
            }
        }
        let up = sw.upcall_stats();
        assert_eq!(up.enqueued, 2);
        assert_eq!(up.queue_drops, 3);
        assert_eq!(
            sw.stats().policy_drops,
            0,
            "queue drops are not policy drops"
        );
        assert_eq!(sw.stats().upcalls, 0);
        // Drain frees capacity again (an off-net source still misses:
        // the freshly installed /8 allow megaflow does not cover it).
        sw.drain_upcalls(t, |_| {});
        assert_eq!(sw.upcall_queue_depth_of(POD_VPORT), 0);
        assert!(sw.process(&pkt([200, 8, 8, 8], 9999), t).path.is_queued());
    }

    #[test]
    fn handler_budget_carries_debt_across_steps() {
        // Budget covers exactly one default-cost upcall and overruns:
        // the debt suppresses part of the next step.
        let cost = CostModel::default();
        let one_upcall = cost.handler_cycles(2, true, true);
        let mut sw = bounded_switch(crate::upcall::UpcallPipelineConfig {
            queue_capacity: 64,
            handler_cycles_per_step: one_upcall / 2,
            port_quota_per_step: None,
        });
        let t = SimTime::from_millis(1);
        for i in 0..3u16 {
            sw.process(&pkt([10, 9, 0, i as u8], 7000 + i), t);
        }
        assert_eq!(sw.drain_upcalls(t, |_| {}), 1, "budget>0 admits one");
        // Debt ≈ one_upcall/2: the next half-budget step nets ~0.
        assert_eq!(sw.drain_upcalls(t, |_| {}), 0, "carry debt repaid first");
        assert_eq!(sw.drain_upcalls(t, |_| {}), 1);
        assert_eq!(sw.upcall_queue_depth(), 1);
    }

    #[test]
    fn port_quota_defers_over_quota_ports_only() {
        let other_ip = [10, 0, 0, 98];
        let mut sw =
            bounded_switch(crate::upcall::UpcallPipelineConfig::unbounded().with_port_quota(1));
        sw.attach_pod(u32::from_be_bytes(other_ip), 5);
        let t = SimTime::from_millis(1);
        // Three misses for the pod, one for the other port, interleaved
        // so FIFO order alone would serve the pod thrice first.
        sw.process(&pkt([10, 9, 0, 1], 7001), t);
        sw.process(&pkt([10, 9, 0, 2], 7002), t);
        sw.process(&pkt([10, 9, 0, 3], 7003), t);
        sw.process(&FlowKey::tcp([10, 3, 3, 3], other_ip, 1, 1), t);
        let mut served = Vec::new();
        sw.drain_upcalls(t, |r| served.push(r.outcome.output));
        assert_eq!(
            served,
            vec![Some(POD_VPORT), Some(5)],
            "one per port per step under quota"
        );
        assert_eq!(sw.upcall_queue_depth_of(POD_VPORT), 2);
        assert!(sw.upcall_stats().quota_deferrals >= 1);
        // Next step serves the pod's backlog one at a time.
        sw.drain_upcalls(t, |_| {});
        assert_eq!(sw.upcall_queue_depth_of(POD_VPORT), 1);
    }

    #[test]
    fn acl_change_discards_staged_installs_and_reclassifies_queued() {
        let mut sw = bounded_switch(crate::upcall::UpcallPipelineConfig::unbounded());
        let t = SimTime::from_millis(1);
        let p = pkt([10, 1, 1, 1], 1000);
        assert!(sw.process(&p, t).path.is_queued());
        // Policy flips to deny-everything while the upcall is pending.
        assert!(sw.install_acl(u32::from_be_bytes(POD_IP), whitelist_with_default_deny(&[])));
        let mut verdicts = Vec::new();
        sw.drain_upcalls(t, |r| verdicts.push(r.outcome.verdict));
        assert_eq!(verdicts, vec![Action::Deny], "classified under the new ACL");
    }

    #[test]
    fn quarantine_evicts_and_refuses_slow_path_in_inline_mode() {
        let mut sw = switch_with_fig2_acl();
        let t = SimTime::from_millis(1);
        let pod_ip = u32::from_be_bytes(POD_IP);
        // Build some megaflows (one allow, one deny mask).
        sw.process(&pkt([10, 1, 1, 1], 1000), t);
        sw.process(&pkt([128, 0, 0, 1], 1), t);
        assert!(sw.megaflow_count() >= 2);
        let evicted = sw.quarantine(pod_ip);
        assert_eq!(evicted, sw.mfc_stats().installs as usize);
        assert_eq!(sw.megaflow_count(), 0, "offender megaflows evicted");
        assert!(sw.is_quarantined(pod_ip));
        assert_eq!(sw.quarantined_destinations(), vec![pod_ip]);
        // Traffic to the quarantined pod is refused cheaply: no upcall,
        // no policy classification, EMC no longer serves stale hits.
        let o = sw.process(&pkt([10, 1, 1, 1], 1000), t + SimTime::from_millis(1));
        assert!(o.path.is_upcall_dropped());
        assert_eq!(o.verdict, Action::Controller);
        assert_eq!(sw.upcall_stats().quarantine_drops, 1);
        assert_eq!(sw.stats().policy_drops, 1, "only the pre-quarantine deny");
        assert_eq!(sw.megaflow_count(), 0, "nothing rebuilt");
        // Release restores normal service.
        assert!(sw.release_quarantine(pod_ip));
        assert!(!sw.release_quarantine(pod_ip));
        let o = sw.process(&pkt([10, 1, 1, 1], 1000), t + SimTime::from_millis(2));
        assert!(o.path.is_upcall());
        assert_eq!(o.verdict, Action::Allow);
    }

    #[test]
    fn quarantine_refuses_before_the_bounded_queue() {
        let mut sw = bounded_switch(crate::upcall::UpcallPipelineConfig::unbounded());
        let t = SimTime::from_millis(1);
        sw.quarantine(u32::from_be_bytes(POD_IP));
        let o = sw.process(&pkt([10, 1, 1, 1], 1000), t);
        assert!(o.path.is_upcall_dropped());
        let up = sw.upcall_stats();
        assert_eq!(up.quarantine_drops, 1);
        assert_eq!(up.enqueued, 0, "never reached a queue");
        assert_eq!(up.queue_drops, 0, "distinct from capacity tail drops");
        assert_eq!(sw.upcall_queue_depth(), 0);
    }

    #[test]
    fn quarantine_refuses_the_backlog_queued_before_it() {
        // Misses queued *before* the quarantine must not resolve into
        // fresh megaflows afterwards — that would rebuild exactly the
        // state the quarantine evicted.
        let mut sw = bounded_switch(crate::upcall::UpcallPipelineConfig::unbounded());
        let t = SimTime::from_millis(1);
        for i in 0..4u16 {
            assert!(sw
                .process(&pkt([10, 9, 0, i as u8 + 1], 7000 + i), t)
                .path
                .is_queued());
        }
        sw.quarantine(u32::from_be_bytes(POD_IP));
        let mut refused = 0;
        sw.drain_upcalls(t, |r| {
            assert!(r.outcome.path.is_upcall_dropped());
            assert_eq!(r.outcome.verdict, Action::Controller);
            refused += 1;
        });
        assert_eq!(refused, 4);
        assert_eq!(sw.megaflow_count(), 0, "backlog must not rebuild megaflows");
        assert_eq!(sw.mask_count(), 0);
        assert_eq!(sw.upcall_stats().quarantine_drops, 4);
        assert_eq!(sw.stats().upcalls, 0, "refusals are not resolutions");
        assert_eq!(sw.upcall_queue_depth(), 0, "queue fully drained");
    }

    #[test]
    fn runtime_quota_and_pipeline_knobs() {
        let mut sw = switch_with_fig2_acl();
        // Inline: quota is meaningless.
        assert!(!sw.set_port_quota(Some(4)));
        // Inline → bounded is always allowed.
        assert!(sw.set_pipeline(PipelineMode::Bounded(
            crate::upcall::UpcallPipelineConfig::unbounded(),
        )));
        assert!(sw.set_port_quota(Some(4)));
        match sw.config().pipeline {
            PipelineMode::Bounded(cfg) => assert_eq!(cfg.port_quota_per_step, Some(4)),
            PipelineMode::Inline => unreachable!(),
        }
        // Queue a miss; bounded → inline must be refused while pending.
        let t = SimTime::from_millis(1);
        assert!(sw.process(&pkt([10, 1, 1, 1], 1000), t).path.is_queued());
        assert!(!sw.set_pipeline(PipelineMode::Inline));
        sw.drain_upcalls(t, |_| {});
        assert!(sw.set_pipeline(PipelineMode::Inline));
        assert_eq!(sw.config().pipeline, PipelineMode::Inline);
        // Staged lookup toggles live and tracks the config.
        assert!(!sw.config().staged_lookup);
        sw.set_staged_lookup(true);
        assert!(sw.config().staged_lookup);
        let o = sw.process(&pkt([10, 2, 2, 2], 2000), t + SimTime::from_millis(1));
        assert!(o.verdict.permits(), "cache still serves after retrofit");
    }

    #[test]
    fn reattach_preserves_the_installed_acl() {
        // Regression: a vport move (or a buggy double-attach) must not
        // silently replace a deny ACL with a permissive slow path.
        let mut sw = switch_with_fig2_acl();
        let denied = pkt([99, 1, 1, 1], 1);
        assert_eq!(sw.process(&denied, SimTime::ZERO).verdict, Action::Deny);
        // Re-attach the same IP at a new vport: not a fresh attach.
        assert!(!sw.attach_pod(u32::from_be_bytes(POD_IP), 9));
        let o = sw.process(&denied, SimTime::from_millis(1));
        assert_eq!(o.verdict, Action::Deny, "deny rule survives re-attach");
        // Allowed traffic now exits the new vport.
        let o = sw.process(&pkt([10, 1, 1, 1], 7), SimTime::from_millis(1));
        assert_eq!(o.verdict, Action::Allow);
        assert_eq!(o.output, Some(9));
        // A genuinely new IP is a fresh attach.
        assert!(sw.attach_pod(u32::from_be_bytes([10, 0, 0, 50]), 4));
    }

    #[test]
    fn setup_sequence_flushes_coalesce_on_a_clean_cache() {
        // attach_pod → install_acl per pod, many pods: zero generation
        // bumps and zero counted flushes, because nothing was ever
        // cached in between. This is the generation-overflow-free pin.
        let mut sw = VSwitch::new(DpConfig::default());
        for i in 0..64u32 {
            assert!(sw.attach_pod(0x0a00_0100 + i, i + 1));
            assert!(sw.install_acl(0x0a00_0100 + i, whitelist_with_default_deny(&[])));
        }
        assert_eq!(sw.emc_generation(), 0, "no generation burned");
        let s = sw.stats();
        assert_eq!(s.cache_flushes, 0);
        assert_eq!(s.flushed_megaflows, 0);
        assert_eq!(s.policy_updates, 128, "updates still counted");
        // Once traffic caches something, the next update really flushes
        // — exactly one generation per effective flush.
        sw.remove_acl(0x0a00_0100);
        sw.process(
            &FlowKey::tcp([10, 1, 1, 1], [10, 0, 1, 0], 5, 5),
            SimTime::ZERO,
        );
        assert_eq!(sw.emc_generation(), 0);
        assert!(sw.install_acl(0x0a00_0100, whitelist_with_default_deny(&[])));
        assert_eq!(sw.emc_generation(), 1);
        assert_eq!(sw.stats().cache_flushes, 1);
        assert_eq!(sw.stats().flushed_megaflows, 1);
        // And the follow-up update on the again-clean cache coalesces.
        sw.remove_acl(0x0a00_0100);
        assert_eq!(sw.emc_generation(), 1);
    }

    #[test]
    fn scoped_invalidation_spares_other_destinations() {
        let other_ip = [10, 0, 0, 98];
        let mut sw = VSwitch::new(DpConfig {
            trie_fields: vec![Field::IpSrc],
            scoped_invalidation: true,
            ..DpConfig::default()
        });
        sw.attach_pod(u32::from_be_bytes(POD_IP), POD_VPORT);
        sw.attach_pod(u32::from_be_bytes(other_ip), 5);
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        );
        sw.install_acl(
            u32::from_be_bytes(POD_IP),
            whitelist_with_default_deny(&[allow]),
        );
        let t = SimTime::from_millis(1);
        // Cache state for both destinations.
        sw.process(&pkt([10, 1, 1, 1], 1000), t);
        sw.process(&FlowKey::tcp([10, 3, 3, 3], other_ip, 1, 1), t);
        assert_eq!(sw.megaflow_count(), 2);
        // Re-installing the pod's ACL evicts only the pod's megaflow.
        assert!(sw.install_acl(
            u32::from_be_bytes(POD_IP),
            whitelist_with_default_deny(&[allow]),
        ));
        assert_eq!(sw.megaflow_count(), 1, "other pod's megaflow survives");
        assert_eq!(sw.stats().flushed_megaflows, 1);
        // The other pod's traffic keeps its *microflow* hit: scoped
        // invalidation evicts only the updated destination's EMC
        // entries, so an unrelated ACL install costs the bystander
        // nothing at all.
        let o = sw.process(&FlowKey::tcp([10, 3, 3, 3], other_ip, 1, 1), t);
        assert!(
            o.path.is_microflow(),
            "bystander keeps its EMC hit across the unrelated install"
        );
        // The updated pod rebuilds through the slow path as it must —
        // its own EMC entry was evicted along with its megaflows.
        let o = sw.process(&pkt([10, 1, 1, 1], 1000), t);
        assert!(o.path.is_upcall());
        // The runtime knob flips back to global flushes.
        sw.set_scoped_invalidation(false);
        assert!(!sw.config().scoped_invalidation);
        assert!(sw.install_acl(
            u32::from_be_bytes(POD_IP),
            whitelist_with_default_deny(&[allow]),
        ));
        assert_eq!(sw.megaflow_count(), 0, "global flush takes everything");
    }

    #[test]
    fn costed_updates_charge_the_cycle_budget() {
        let mut sw = switch_with_fig2_acl();
        let pod_ip = u32::from_be_bytes(POD_IP);
        let cost = *sw.cost_model();
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        );
        // Clean cache: the update costs the fixed share only.
        let o = sw.apply_install_acl(pod_ip, whitelist_with_default_deny(&[allow]));
        assert!(o.applied);
        assert_eq!(o.flushed_megaflows, 0);
        assert_eq!(o.cycles, cost.control_update_cycles(0));
        // Populate two megaflows, then flush them through the costed
        // path: the per-entry teardown is charged.
        let t = SimTime::from_millis(1);
        sw.process(&pkt([10, 1, 1, 1], 1), t);
        sw.process(&pkt([128, 1, 1, 1], 1), t);
        let cached = sw.megaflow_count();
        assert!(cached >= 2);
        let packet_cycles = sw.stats().cycles - o.cycles;
        let o2 = sw.apply_remove_acl(pod_ip);
        assert!(o2.applied);
        assert!(!o2.scoped);
        assert_eq!(o2.flushed_megaflows, cached);
        assert_eq!(o2.cycles, cost.control_update_cycles(cached));
        let s = sw.stats();
        assert_eq!(s.control_cycles, o.cycles + o2.cycles);
        assert_eq!(s.cycles, packet_cycles + s.control_cycles);
        assert_eq!(s.policy_updates, 2 + 2, "setup install + attach + 2 costed");
        // An update on an unattached IP applies nothing but still
        // costs the control-plane round trip.
        let o3 = sw.apply_remove_acl(0xdead_beef);
        assert!(!o3.applied);
        assert_eq!(o3.cycles, cost.control_update_cycles(0));
    }

    #[test]
    fn revalidator_interval_is_configurable_and_rearmable() {
        // Construction honours DpConfig::revalidator_interval...
        let mut sw = VSwitch::new(DpConfig {
            revalidator_interval: SimTime::from_millis(250),
            ..DpConfig::default()
        });
        sw.attach_pod(u32::from_be_bytes(POD_IP), POD_VPORT);
        assert_eq!(sw.next_revalidation(), SimTime::from_millis(250));
        assert!(sw.revalidate(SimTime::from_millis(249)).is_none());
        assert!(sw.revalidate(SimTime::from_millis(250)).is_some());
        assert_eq!(sw.next_revalidation(), SimTime::from_millis(500));
        // ...and the runtime setter re-arms on the new grid, keeping
        // the live config in sync.
        sw.set_revalidator_interval(SimTime::from_secs(2), SimTime::from_millis(300));
        assert_eq!(sw.config().revalidator_interval, SimTime::from_secs(2));
        assert_eq!(sw.next_revalidation(), SimTime::from_secs(2));
        assert!(sw.revalidate(SimTime::from_millis(1_999)).is_none());
        assert!(sw.revalidate(SimTime::from_secs(2)).is_some());
        // The sweep still evicts on the idle-timeout boundary.
        let p = pkt([10, 1, 1, 1], 1000);
        sw.process(&p, SimTime::from_secs(2));
        assert_eq!(sw.megaflow_count(), 1);
        assert!(sw.revalidate(SimTime::from_secs(14)).is_some());
        assert_eq!(sw.megaflow_count(), 0, "idled out under the new grid");
    }

    #[test]
    fn two_pods_isolated_policies() {
        // The shared-cache property: pod A's ACL masks sit in the same
        // subtable list pod B's traffic walks.
        let mut sw = VSwitch::new(DpConfig {
            trie_fields: vec![Field::IpSrc],
            ..DpConfig::default()
        });
        let a_ip = u32::from_be_bytes([10, 0, 0, 1]);
        let b_ip = u32::from_be_bytes([10, 0, 0, 2]);
        sw.attach_pod(a_ip, 1);
        sw.attach_pod(b_ip, 2);
        // A allows only 10/8; B allows everything (no ACL).
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        );
        sw.install_acl(a_ip, whitelist_with_default_deny(&[allow]));
        // Build masks at A by sending divergent sources.
        for oct in [128u8, 64, 32, 16] {
            let p = FlowKey::tcp([oct, 0, 0, 1], [10, 0, 0, 1], 1, 1);
            assert_eq!(sw.process(&p, SimTime::ZERO).verdict, Action::Deny);
        }
        let masks_after_attack_on_a = sw.mask_count();
        assert_eq!(masks_after_attack_on_a, 4);
        // B's traffic now probes those subtables too (shared cache):
        // a fresh flow to B misses all of A's subtables first.
        let to_b = FlowKey::tcp([172, 16, 0, 1], [10, 0, 0, 2], 5, 5);
        let o = sw.process(&to_b, SimTime::ZERO);
        assert!(o.path.is_upcall());
        match o.path {
            PathTaken::Upcall { probes, .. } => {
                assert_eq!(probes, masks_after_attack_on_a, "walked A's masks")
            }
            _ => unreachable!(),
        }
        assert_eq!(o.verdict, Action::Allow);
    }
}
