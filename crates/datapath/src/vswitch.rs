//! The virtual switch: the full three-level pipeline per packet.
//!
//! Pipeline semantics follow the paper's Fig. 1: pods attach to virtual
//! ports, and a pod's ACL protects traffic **to** that pod
//! (microsegmentation is ingress whitelisting — the compiled rules match
//! `ip_src`, which only makes sense enforced at the destination). The
//! slow path therefore (1) routes on the destination IP to find the
//! target vport and (2) classifies against that pod's ACL; generated
//! megaflows pin `ip_dst` exactly and carry the ACL's un-wildcarded
//! fields (Fig. 2b).
//!
//! Both caches are **shared across all ports and tenants** — the
//! isolation gap the attack exploits: masks created by feeding one
//! tenant's ACL are walked by every other tenant's packets.

use std::collections::HashMap;

use pi_classifier::{Action, FlowTable};
use pi_core::{Field, FlowKey, KeyWords, SimTime, SplitMix64};
use pi_packet::extract_flow_key;

use crate::config::DpConfig;
use crate::cost::CostModel;
use crate::emc::MicroflowCache;
use crate::megaflow::{InstallOutcome, MegaflowCache};
use crate::revalidator::{Revalidator, RevalidatorReport};
use crate::slowpath::SlowPath;

/// Which level of the pipeline resolved a packet, with the cost-bearing
/// counters of that path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathTaken {
    /// Exact-match cache hit.
    MicroflowHit,
    /// Megaflow (TSS) hit after `probes` subtable visits.
    MegaflowHit {
        /// Subtables visited.
        probes: usize,
        /// Stage-hash units of work.
        stage_checks: usize,
        /// Whether the microflow cache was probed first (and missed).
        emc_probed: bool,
        /// Whether the flow was promoted into the microflow cache.
        emc_inserted: bool,
    },
    /// Full slow-path upcall.
    Upcall {
        /// Subtables visited during the (missing) megaflow lookup.
        probes: usize,
        /// Stage-hash units of work.
        stage_checks: usize,
        /// Rules scanned by linear classification.
        rules_examined: usize,
        /// Whether a megaflow was installed (false ⇒ flow limit hit).
        installed: bool,
        /// Whether the microflow cache was probed first (and missed).
        emc_probed: bool,
        /// Whether the flow was promoted into the microflow cache.
        emc_inserted: bool,
    },
}

impl PathTaken {
    /// True for the cheapest (microflow) path.
    pub fn is_microflow(&self) -> bool {
        matches!(self, PathTaken::MicroflowHit)
    }

    /// True for a megaflow hit.
    pub fn is_megaflow(&self) -> bool {
        matches!(self, PathTaken::MegaflowHit { .. })
    }

    /// True for an upcall.
    pub fn is_upcall(&self) -> bool {
        matches!(self, PathTaken::Upcall { .. })
    }

    /// Subtables probed on this path (0 for a microflow hit).
    pub fn probes(&self) -> usize {
        match self {
            PathTaken::MicroflowHit => 0,
            PathTaken::MegaflowHit { probes, .. } | PathTaken::Upcall { probes, .. } => *probes,
        }
    }
}

/// Per-packet processing result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessOutcome {
    /// The policy verdict.
    pub verdict: Action,
    /// Destination vport when the verdict permits delivery.
    pub output: Option<u32>,
    /// Which pipeline level resolved the packet.
    pub path: PathTaken,
    /// CPU cycles charged (parse + path) under the switch's cost model.
    pub cycles: u64,
}

/// Aggregate switch statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets processed.
    pub packets: u64,
    /// Microflow-cache hits.
    pub microflow_hits: u64,
    /// Megaflow-cache hits.
    pub megaflow_hits: u64,
    /// Slow-path upcalls.
    pub upcalls: u64,
    /// Packets denied by policy (or unroutable).
    pub policy_drops: u64,
    /// Total cycles consumed.
    pub cycles: u64,
    /// Total subtable probes across all fast-path lookups.
    pub subtable_probes: u64,
}

impl SwitchStats {
    /// Mean cycles per packet.
    pub fn avg_cycles(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.cycles as f64 / self.packets as f64
        }
    }

    /// Mean subtable probes per packet (the attack's fingerprint).
    pub fn avg_probes(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.subtable_probes as f64 / self.packets as f64
        }
    }

    /// Fraction of packets resolved at the microflow cache — the other
    /// hot-path health counter the benches record.
    pub fn emc_hit_rate(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.microflow_hits as f64 / self.packets as f64
        }
    }
}

/// One pod attachment: vport + the pod's ingress policy.
#[derive(Debug, Clone)]
struct PodPort {
    vport: u32,
    slowpath: SlowPath,
}

/// An OVS-like virtual switch: shared microflow + megaflow caches in
/// front of per-pod ingress ACL slow paths.
#[derive(Debug)]
pub struct VSwitch {
    config: DpConfig,
    cost: CostModel,
    emc: MicroflowCache,
    mfc: MegaflowCache,
    revalidator: Revalidator,
    /// Destination IP (host order) → pod port.
    routes: HashMap<u32, PodPort>,
    /// Bumped on policy changes / evictions to invalidate the EMC.
    generation: u64,
    stats: SwitchStats,
    rng: SplitMix64,
}

impl VSwitch {
    /// Builds a switch from a configuration, with the default cost model.
    pub fn new(config: DpConfig) -> Self {
        Self::with_cost_model(config, CostModel::default())
    }

    /// Builds a switch with an explicit cost model.
    pub fn with_cost_model(config: DpConfig, cost: CostModel) -> Self {
        let emc = MicroflowCache::new(
            config.emc_entries,
            config.emc_ways,
            config.emc_insert_prob,
            config.seed ^ 0xe3c,
        );
        let mfc = MegaflowCache::new(
            config.flow_limit,
            config.subtable_order,
            config.staged_lookup,
        );
        let revalidator = Revalidator::new(SimTime::from_secs(1), config.idle_timeout);
        let rng = SplitMix64::new(config.seed ^ 0x575);
        VSwitch {
            config,
            cost,
            emc,
            mfc,
            revalidator,
            routes: HashMap::new(),
            generation: 0,
            stats: SwitchStats::default(),
            rng,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DpConfig {
        &self.config
    }

    /// The cycle cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Attaches a pod: traffic to `ip` is delivered out of `vport`,
    /// initially with no ACL (everything allowed).
    pub fn attach_pod(&mut self, ip: u32, vport: u32) {
        self.routes.insert(
            ip,
            PodPort {
                vport,
                slowpath: SlowPath::permissive(Action::Allow),
            },
        );
        self.invalidate_caches();
    }

    /// Installs (or replaces) the ingress ACL protecting the pod at
    /// `ip`. This is the CMS's hand-off point — and the attacker's
    /// (§2: "the attacker installs ACLs at the virtual ports").
    ///
    /// Returns false if no pod is attached at `ip`.
    pub fn install_acl(&mut self, ip: u32, table: FlowTable) -> bool {
        let trie_fields = self.config.trie_fields.clone();
        let installed = match self.routes.get_mut(&ip) {
            Some(port) => {
                port.slowpath = SlowPath::new(table, &trie_fields, Action::Deny);
                true
            }
            None => false,
        };
        if installed {
            self.invalidate_caches();
        }
        installed
    }

    /// Removes the ACL at `ip` (pod reverts to allow-all).
    pub fn remove_acl(&mut self, ip: u32) -> bool {
        let removed = match self.routes.get_mut(&ip) {
            Some(port) => {
                port.slowpath = SlowPath::permissive(Action::Allow);
                true
            }
            None => false,
        };
        if removed {
            self.invalidate_caches();
        }
        removed
    }

    fn invalidate_caches(&mut self) {
        self.mfc.clear();
        self.generation += 1;
    }

    /// The megaflow mask count — Fig. 3's right-hand axis.
    pub fn mask_count(&self) -> usize {
        self.mfc.mask_count()
    }

    /// The megaflow entry count.
    pub fn megaflow_count(&self) -> usize {
        self.mfc.len()
    }

    /// Switch statistics so far.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Resets packet/cycle counters (not the caches).
    pub fn reset_stats(&mut self) {
        self.stats = SwitchStats::default();
    }

    /// EMC statistics.
    pub fn emc_stats(&self) -> crate::emc::EmcStats {
        self.emc.stats()
    }

    /// MFC statistics.
    pub fn mfc_stats(&self) -> crate::megaflow::MfcStats {
        self.mfc.stats()
    }

    /// Read access to the megaflow cache for diagnostics.
    pub fn megaflows(&self) -> &MegaflowCache {
        &self.mfc
    }

    /// Runs the revalidator if due (call once per simulated tick).
    pub fn revalidate(&mut self, now: SimTime) -> Option<RevalidatorReport> {
        let report = self.revalidator.maybe_sweep(&mut self.mfc, now);
        if let Some(r) = &report {
            if r.evicted_idle > 0 {
                // Conservative EMC invalidation: evicted megaflows may
                // back EMC entries.
                self.generation += 1;
            }
        }
        report
    }

    /// Processes a raw frame arriving on `in_port`.
    pub fn process_frame(
        &mut self,
        frame: &[u8],
        in_port: u32,
        now: SimTime,
    ) -> pi_core::Result<ProcessOutcome> {
        let key = extract_flow_key(frame, in_port)?;
        Ok(self.process(&key, now))
    }

    /// Processes a pre-parsed flow key (the simulator's hot path — the
    /// parse cost is still charged).
    pub fn process(&mut self, key: &FlowKey, now: SimTime) -> ProcessOutcome {
        self.process_with(key, &KeyWords::of(key), now)
    }

    /// Maximum packets hashed per [`VSwitch::process_batch`] phase —
    /// OVS's `NETDEV_MAX_BURST`.
    pub const BATCH_SIZE: usize = 32;

    /// Processes a run of pre-parsed flow keys, amortising the hash
    /// work: each sub-batch of up to [`VSwitch::BATCH_SIZE`] packets has
    /// its [`KeyWords`] extracted in one pass before any lookup runs, and
    /// every pipeline level (EMC set index, every subtable's masked
    /// hash) derives from those words — nothing allocates and no key is
    /// re-hashed per level.
    ///
    /// Verdicts, stats and cache mutations are **exactly** those of
    /// `keys.len()` sequential [`VSwitch::process`] calls (pinned by
    /// `tests/batch_equivalence.rs`): lookups still execute in packet
    /// order, so a packet can hit an EMC entry promoted by an earlier
    /// packet of the same batch.
    ///
    /// `sink` receives each packet's index and outcome and returns
    /// whether to continue; returning `false` stops the batch (the
    /// simulator's per-tick cycle budget), leaving later packets
    /// untouched. Returns the number of packets processed.
    pub fn process_batch(
        &mut self,
        keys: &[FlowKey],
        now: SimTime,
        mut sink: impl FnMut(usize, ProcessOutcome) -> bool,
    ) -> usize {
        let mut words = [KeyWords::ZERO; Self::BATCH_SIZE];
        let mut done = 0;
        for (chunk_idx, chunk) in keys.chunks(Self::BATCH_SIZE).enumerate() {
            // Phase 1: hash the whole sub-batch (pure — no stats, no
            // cache effects, so an early sink stop never over-counts).
            // An early stop discards at most 31 word extractions
            // (~tens of cycles each) — noise next to the thousands of
            // cycles per processed packet that caused the stop.
            for (w, key) in words.iter_mut().zip(chunk) {
                *w = KeyWords::of(key);
            }
            // Phase 2: per-packet lookups in arrival order.
            for (i, key) in chunk.iter().enumerate() {
                let outcome = self.process_with(key, &words[i], now);
                done += 1;
                if !sink(chunk_idx * Self::BATCH_SIZE + i, outcome) {
                    return done;
                }
            }
        }
        done
    }

    /// The shared per-packet pipeline, with the key's words precomputed.
    fn process_with(&mut self, key: &FlowKey, words: &KeyWords, now: SimTime) -> ProcessOutcome {
        self.stats.packets += 1;
        let hash = words.full_hash();

        // Level 1: microflow cache.
        let emc_probed = self.config.emc_enabled;
        if emc_probed {
            if let Some(action) = self.emc.lookup_hashed(hash, key, self.generation, now) {
                return self.finish(action, PathTaken::MicroflowHit, key);
            }
        }

        // Level 2: megaflow cache.
        let out = self.mfc.lookup_with(key, words, now);
        self.stats.subtable_probes += out.probes as u64;
        if let Some(action) = out.value {
            let emc_inserted =
                emc_probed && self.emc.insert_hashed(hash, key, action, self.generation, now);
            let path = PathTaken::MegaflowHit {
                probes: out.probes,
                stage_checks: out.stage_checks,
                emc_probed,
                emc_inserted,
            };
            return self.finish(action, path, key);
        }

        // Level 3: upcall — route on ip_dst, then the pod's ingress ACL.
        let (action, acl_mask, rules_examined) = match self.routes.get(&key.ip_dst) {
            Some(port) => {
                let up = port.slowpath.process_upcall(key);
                (up.action, *up.megaflow.mask(), up.rules_examined)
            }
            // Unroutable destination: drop; the megaflow needs only the
            // destination address to stay sound.
            None => (Action::Deny, pi_core::FlowMask::WILDCARD, 0),
        };
        // Routing consulted the destination IP: pin it exactly.
        let mut mask = acl_mask;
        mask.unwildcard(Field::IpDst, Field::IpDst.full_mask());
        let megaflow = pi_core::MaskedKey::new(*key, mask);

        let installed = matches!(
            self.mfc.install(megaflow, action, now),
            InstallOutcome::Installed
        );
        let emc_inserted =
            emc_probed && self.emc.insert_hashed(hash, key, action, self.generation, now);
        let path = PathTaken::Upcall {
            probes: out.probes,
            stage_checks: out.stage_checks,
            rules_examined,
            installed,
            emc_probed,
            emc_inserted,
        };
        self.finish(action, path, key)
    }

    fn finish(&mut self, verdict: Action, path: PathTaken, key: &FlowKey) -> ProcessOutcome {
        match &path {
            PathTaken::MicroflowHit => self.stats.microflow_hits += 1,
            PathTaken::MegaflowHit { .. } => self.stats.megaflow_hits += 1,
            PathTaken::Upcall { .. } => self.stats.upcalls += 1,
        }
        let output = if verdict.permits() {
            self.routes.get(&key.ip_dst).map(|p| p.vport)
        } else {
            None
        };
        if output.is_none() {
            self.stats.policy_drops += 1;
        }
        let cycles = self.cost.packet_cycles(&path);
        self.stats.cycles += cycles;
        ProcessOutcome {
            verdict,
            output,
            path,
            cycles,
        }
    }

    /// Deterministic tie-break helper for tests that need switch-side
    /// randomness (kept so config seeding covers all state).
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_classifier::table::whitelist_with_default_deny;
    use pi_core::{FlowMask, MaskedKey};

    const POD_IP: [u8; 4] = [10, 0, 0, 99];
    const POD_VPORT: u32 = 3;

    /// Pod at 10.0.0.99:vport3 with "allow from 10.0.0.0/8, deny rest".
    fn switch_with_fig2_acl() -> VSwitch {
        let mut sw = VSwitch::new(DpConfig {
            trie_fields: vec![Field::IpSrc],
            ..DpConfig::default()
        });
        sw.attach_pod(u32::from_be_bytes(POD_IP), POD_VPORT);
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        );
        sw.install_acl(
            u32::from_be_bytes(POD_IP),
            whitelist_with_default_deny(&[allow]),
        );
        sw
    }

    fn pkt(src: [u8; 4], tp_src: u16) -> FlowKey {
        FlowKey::tcp(src, POD_IP, tp_src, 5201)
    }

    #[test]
    fn first_packet_upcalls_then_microflow_hits() {
        let mut sw = switch_with_fig2_acl();
        let t = SimTime::from_millis(1);
        let p = pkt([10, 1, 1, 1], 1000);
        let o1 = sw.process(&p, t);
        assert!(o1.path.is_upcall());
        assert_eq!(o1.verdict, Action::Allow);
        assert_eq!(o1.output, Some(POD_VPORT));
        let o2 = sw.process(&p, t + SimTime::from_millis(1));
        assert!(o2.path.is_microflow());
        assert!(o2.cycles < o1.cycles);
        let s = sw.stats();
        assert_eq!(s.upcalls, 1);
        assert_eq!(s.microflow_hits, 1);
        assert_eq!(s.packets, 2);
    }

    #[test]
    fn same_megaflow_different_key_hits_megaflow() {
        let mut sw = switch_with_fig2_acl();
        let t = SimTime::from_millis(1);
        sw.process(&pkt([10, 1, 1, 1], 1000), t);
        // Different host, same /8 and wildcarded ports: EMC misses
        // (different exact key) but the /8 megaflow matches.
        let o = sw.process(&pkt([10, 2, 2, 2], 2000), t);
        assert!(o.path.is_megaflow());
        assert_eq!(o.verdict, Action::Allow);
    }

    #[test]
    fn deny_verdicts_counted_as_policy_drops() {
        let mut sw = switch_with_fig2_acl();
        let o = sw.process(&pkt([99, 1, 1, 1], 1000), SimTime::ZERO);
        assert_eq!(o.verdict, Action::Deny);
        assert_eq!(o.output, None);
        assert_eq!(sw.stats().policy_drops, 1);
    }

    #[test]
    fn fig2b_masks_accumulate_per_divergence_depth() {
        // Feeding the 8 complement packets of Fig. 2b (first-octet
        // divergence at depths 1..8) plus one allow packet produces
        // exactly 8 distinct megaflow masks (the allow /8 mask equals the
        // depth-8 deny mask).
        let mut sw = switch_with_fig2_acl();
        let t = SimTime::ZERO;
        let first_octets = [128u8, 64, 32, 16, 0, 12, 8, 11]; // depths 1..8
        for o in first_octets {
            sw.process(&pkt([o, 0, 0, 1], 1), t);
        }
        sw.process(&pkt([10, 0, 0, 1], 1), t); // allow
        assert_eq!(sw.mask_count(), 8, "Fig. 2b: 8 masks");
        assert_eq!(sw.megaflow_count(), 9, "Fig. 2b: 9 entries");
    }

    #[test]
    fn unroutable_destination_denies_without_polluting() {
        let mut sw = switch_with_fig2_acl();
        let stray = FlowKey::tcp([10, 1, 1, 1], [172, 16, 0, 1], 1, 1);
        let o = sw.process(&stray, SimTime::ZERO);
        assert_eq!(o.verdict, Action::Deny);
        // The unroutable megaflow pins ip_dst only — one extra mask.
        assert_eq!(sw.mask_count(), 1);
        // And it must not swallow traffic to the real pod.
        let o2 = sw.process(&pkt([10, 1, 1, 1], 1), SimTime::ZERO);
        assert_eq!(o2.verdict, Action::Allow);
    }

    #[test]
    fn pod_without_acl_allows_everything_with_one_mask() {
        let mut sw = VSwitch::new(DpConfig::default());
        sw.attach_pod(u32::from_be_bytes([10, 0, 0, 5]), 9);
        let p = FlowKey::tcp([1, 2, 3, 4], [10, 0, 0, 5], 7, 8);
        let q = FlowKey::udp([9, 9, 9, 9], [10, 0, 0, 5], 53, 53);
        assert_eq!(sw.process(&p, SimTime::ZERO).verdict, Action::Allow);
        assert_eq!(sw.process(&q, SimTime::ZERO).verdict, Action::Allow);
        assert_eq!(sw.mask_count(), 1, "single ip_dst-only mask");
        assert_eq!(sw.megaflow_count(), 1);
    }

    #[test]
    fn acl_install_flushes_caches() {
        let mut sw = switch_with_fig2_acl();
        let p = pkt([10, 1, 1, 1], 1000);
        sw.process(&p, SimTime::ZERO);
        assert_eq!(sw.megaflow_count(), 1);
        // Replace the ACL with deny-everything.
        assert!(sw.install_acl(
            u32::from_be_bytes(POD_IP),
            whitelist_with_default_deny(&[])
        ));
        assert_eq!(sw.megaflow_count(), 0);
        let o = sw.process(&p, SimTime::ZERO);
        assert!(o.path.is_upcall(), "EMC must not serve stale verdicts");
        assert_eq!(o.verdict, Action::Deny);
    }

    #[test]
    fn remove_acl_restores_allow_all() {
        let mut sw = switch_with_fig2_acl();
        let denied = pkt([99, 1, 1, 1], 1);
        assert_eq!(sw.process(&denied, SimTime::ZERO).verdict, Action::Deny);
        assert!(sw.remove_acl(u32::from_be_bytes(POD_IP)));
        assert_eq!(sw.process(&denied, SimTime::ZERO).verdict, Action::Allow);
        assert!(!sw.remove_acl(0xdead_beef));
    }

    #[test]
    fn install_acl_on_unknown_ip_fails() {
        let mut sw = VSwitch::new(DpConfig::default());
        assert!(!sw.install_acl(0x0a000001, whitelist_with_default_deny(&[])));
    }

    #[test]
    fn revalidation_evicts_idle_and_invalidates_emc() {
        let mut sw = switch_with_fig2_acl();
        let p = pkt([10, 1, 1, 1], 1000);
        sw.process(&p, SimTime::ZERO);
        assert_eq!(sw.megaflow_count(), 1);
        // 15 s later, the flow has idled out (timeout 10 s).
        let report = sw.revalidate(SimTime::from_secs(15)).unwrap();
        assert_eq!(report.evicted_idle, 1);
        assert_eq!(sw.megaflow_count(), 0);
        let o = sw.process(&p, SimTime::from_secs(15));
        assert!(o.path.is_upcall(), "EMC generation must have advanced");
    }

    #[test]
    fn process_frame_parses_then_processes() {
        let mut sw = switch_with_fig2_acl();
        let key = pkt([10, 3, 3, 3], 777);
        let frame = pi_packet::PacketBuilder::new().build(&key).unwrap();
        let o = sw.process_frame(&frame, 1, SimTime::ZERO).unwrap();
        assert_eq!(o.verdict, Action::Allow);
        assert!(sw.process_frame(&frame[..7], 1, SimTime::ZERO).is_err());
    }

    #[test]
    fn cycles_accumulate_in_stats() {
        let mut sw = switch_with_fig2_acl();
        let p = pkt([10, 1, 1, 1], 1000);
        let o1 = sw.process(&p, SimTime::ZERO);
        let o2 = sw.process(&p, SimTime::ZERO);
        assert_eq!(sw.stats().cycles, o1.cycles + o2.cycles);
        assert!(sw.stats().avg_cycles() > 0.0);
        sw.reset_stats();
        assert_eq!(sw.stats().packets, 0);
    }

    #[test]
    fn emc_disabled_paths_skip_microflow() {
        let mut sw = VSwitch::new(DpConfig {
            emc_enabled: false,
            trie_fields: vec![Field::IpSrc],
            ..DpConfig::default()
        });
        sw.attach_pod(u32::from_be_bytes(POD_IP), POD_VPORT);
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        );
        sw.install_acl(
            u32::from_be_bytes(POD_IP),
            whitelist_with_default_deny(&[allow]),
        );
        let p = pkt([10, 1, 1, 1], 1000);
        sw.process(&p, SimTime::ZERO);
        let o = sw.process(&p, SimTime::ZERO);
        assert!(o.path.is_megaflow(), "no EMC ⇒ repeat packets hit MFC");
        match o.path {
            PathTaken::MegaflowHit { emc_probed, .. } => assert!(!emc_probed),
            _ => unreachable!(),
        }
    }

    #[test]
    fn two_pods_isolated_policies() {
        // The shared-cache property: pod A's ACL masks sit in the same
        // subtable list pod B's traffic walks.
        let mut sw = VSwitch::new(DpConfig {
            trie_fields: vec![Field::IpSrc],
            ..DpConfig::default()
        });
        let a_ip = u32::from_be_bytes([10, 0, 0, 1]);
        let b_ip = u32::from_be_bytes([10, 0, 0, 2]);
        sw.attach_pod(a_ip, 1);
        sw.attach_pod(b_ip, 2);
        // A allows only 10/8; B allows everything (no ACL).
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        );
        sw.install_acl(a_ip, whitelist_with_default_deny(&[allow]));
        // Build masks at A by sending divergent sources.
        for oct in [128u8, 64, 32, 16] {
            let p = FlowKey::tcp([oct, 0, 0, 1], [10, 0, 0, 1], 1, 1);
            assert_eq!(sw.process(&p, SimTime::ZERO).verdict, Action::Deny);
        }
        let masks_after_attack_on_a = sw.mask_count();
        assert_eq!(masks_after_attack_on_a, 4);
        // B's traffic now probes those subtables too (shared cache):
        // a fresh flow to B misses all of A's subtables first.
        let to_b = FlowKey::tcp([172, 16, 0, 1], [10, 0, 0, 2], 5, 5);
        let o = sw.process(&to_b, SimTime::ZERO);
        assert!(o.path.is_upcall());
        match o.path {
            PathTaken::Upcall { probes, .. } => {
                assert_eq!(probes, masks_after_attack_on_a, "walked A's masks")
            }
            _ => unreachable!(),
        }
        assert_eq!(o.verdict, Action::Allow);
    }
}
