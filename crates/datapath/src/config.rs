//! Datapath configuration.

use pi_classifier::SubtableOrder;
use pi_core::{Field, SimTime};

use crate::upcall::PipelineMode;

/// Tunables of one virtual switch, with defaults matching the OVS
/// deployment the paper attacks.
#[derive(Debug, Clone)]
pub struct DpConfig {
    /// Whether the first-level exact-match cache exists at all (the
    /// cache-less ablation turns it off).
    pub emc_enabled: bool,
    /// Microflow cache capacity in entries (OVS EMC default: 8192).
    pub emc_entries: usize,
    /// Set associativity of the microflow cache (OVS: 2-way).
    pub emc_ways: usize,
    /// Probability of inserting a flow into the microflow cache after a
    /// megaflow hit. OVS-DPDK ships 1/100 to bound insertion overhead;
    /// 1.0 makes small tests deterministic.
    pub emc_insert_prob: f64,
    /// Maximum megaflow entries before installs are refused (OVS
    /// `flow-limit`, default 200 000).
    pub flow_limit: usize,
    /// Megaflow idle timeout (OVS default 10 s) — evicted by the
    /// revalidator if unused this long. Sets the covert refresh
    /// bandwidth the attack needs (paper: 1–2 Mb/s).
    pub idle_timeout: SimTime,
    /// Cadence of the revalidator's idle sweep (OVS sweeps roughly once
    /// a second). Values of zero are clamped to 1 ns by the
    /// revalidator. Runtime-adjustable via
    /// [`crate::VSwitch::set_revalidator_interval`].
    pub revalidator_interval: SimTime,
    /// Scope of the cache invalidation a policy change triggers. False
    /// (the OVS behaviour the paper attacks) flushes the megaflow cache
    /// wholesale; true evicts only the megaflows pinned to the updated
    /// destination ([`crate::MegaflowCache::evict_destination`] — sound
    /// because this pipeline's megaflows always pin `ip_dst`), leaving
    /// other tenants' fast-path state intact. Either way the EMC is
    /// invalidated in full: its entries carry no per-destination index,
    /// so scoping stops at the megaflow layer (the ablation's caveat).
    pub scoped_invalidation: bool,
    /// Fields with prefix tries enabled for megaflow generation. The
    /// paper's mask counts (8 / 512 / 8192) require tries on the IP
    /// source and the L4 ports, matching the demo's OVS configuration.
    pub trie_fields: Vec<Field>,
    /// Enables staged subtable lookup (mitigation ablation).
    pub staged_lookup: bool,
    /// Subtable walk order (mitigation ablation uses hit-count sorting).
    pub subtable_order: SubtableOrder,
    /// How megaflow misses reach the slow path: synchronously
    /// ([`PipelineMode::Inline`], the historical semantics) or through
    /// the bounded per-port upcall pipeline
    /// ([`PipelineMode::Bounded`]).
    pub pipeline: PipelineMode,
    /// Seed for the datapath's internal randomness (EMC way eviction,
    /// probabilistic insertion).
    pub seed: u64,
}

impl Default for DpConfig {
    fn default() -> Self {
        DpConfig {
            emc_enabled: true,
            emc_entries: 8192,
            emc_ways: 2,
            emc_insert_prob: 1.0,
            flow_limit: 200_000,
            idle_timeout: SimTime::from_secs(10),
            revalidator_interval: SimTime::from_secs(1),
            scoped_invalidation: false,
            trie_fields: vec![Field::IpSrc, Field::IpDst, Field::TpSrc, Field::TpDst],
            staged_lookup: false,
            subtable_order: SubtableOrder::Insertion,
            pipeline: PipelineMode::Inline,
            seed: 0x05_eed0_f0e5,
        }
    }
}

impl DpConfig {
    /// OVS-DPDK-flavoured defaults: probabilistic EMC insertion.
    pub fn dpdk_like() -> Self {
        DpConfig {
            emc_insert_prob: 0.01,
            ..Self::default()
        }
    }

    /// The cache-less configuration used by the mitigation comparison.
    pub fn no_emc() -> Self {
        DpConfig {
            emc_enabled: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_deployment() {
        let c = DpConfig::default();
        assert!(c.emc_enabled);
        assert_eq!(c.emc_entries, 8192);
        assert_eq!(c.emc_ways, 2);
        assert_eq!(c.flow_limit, 200_000);
        assert_eq!(c.idle_timeout, SimTime::from_secs(10));
        assert_eq!(c.revalidator_interval, SimTime::from_secs(1));
        assert!(!c.scoped_invalidation, "global flush is the OVS default");
        assert!(c.trie_fields.contains(&Field::IpSrc));
        assert!(c.trie_fields.contains(&Field::TpSrc));
        assert!(c.trie_fields.contains(&Field::TpDst));
        assert!(!c.staged_lookup);
        assert_eq!(c.subtable_order, SubtableOrder::Insertion);
        assert_eq!(c.pipeline, PipelineMode::Inline, "inline is the default");
    }

    #[test]
    fn variants() {
        assert_eq!(DpConfig::dpdk_like().emc_insert_prob, 0.01);
        assert!(!DpConfig::no_emc().emc_enabled);
    }
}
