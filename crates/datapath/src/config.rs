//! Datapath configuration.

use pi_classifier::SubtableOrder;
use pi_core::{Field, SimTime};

use crate::upcall::PipelineMode;

/// Which dataplane architecture a node runs. The enum lives here (not in
/// `pi_backend`, where the implementations do) so a [`DpConfig`] can name
/// a backend without a dependency cycle: `pi_backend` depends on this
/// crate and resolves the kind into a concrete pipeline at build time.
///
/// The variants mirror the architectures deployed across real clouds:
///
/// * [`BackendKind::OvsCache`] — the EMC→TSS→upcall hierarchy the paper
///   attacks ([`crate::VSwitch`], unchanged).
/// * [`BackendKind::ExactHash`] — an eBPF/Cilium-style exact-match hash
///   pipeline: no wildcard cache, so no mask space to explode.
/// * [`BackendKind::LpmTier`] — a DPDK-style compiled longest-prefix
///   tier: fixed per-packet trie walk, no flow cache at all.
/// * [`BackendKind::NicOffload`] — a SmartNIC with a bounded exact-match
///   offload table and a costed host slow path behind it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The OVS-like three-level cache hierarchy (the paper's target).
    #[default]
    OvsCache,
    /// Exact-match hash pipeline (eBPF/Cilium-style connection map).
    ExactHash,
    /// Compiled longest-prefix-match tier (DPDK-style, cacheless).
    LpmTier,
    /// Bounded SmartNIC offload table with host fallback.
    NicOffload,
}

impl BackendKind {
    /// All backends, in matrix/report order.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::OvsCache,
        BackendKind::ExactHash,
        BackendKind::LpmTier,
        BackendKind::NicOffload,
    ];

    /// The stable lowercase identifier used in CLI arguments and bench
    /// output rows.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::OvsCache => "ovs_cache",
            BackendKind::ExactHash => "exact_hash",
            BackendKind::LpmTier => "lpm_tier",
            BackendKind::NicOffload => "nic_offload",
        }
    }

    /// Parses the identifier produced by [`BackendKind::name`]
    /// (case-insensitive, `-` and `_` interchangeable).
    pub fn parse(s: &str) -> Option<BackendKind> {
        let canon = s.to_ascii_lowercase().replace('-', "_");
        BackendKind::ALL.into_iter().find(|k| k.name() == canon)
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tunables of one virtual switch, with defaults matching the OVS
/// deployment the paper attacks.
#[derive(Debug, Clone)]
pub struct DpConfig {
    /// Whether the first-level exact-match cache exists at all (the
    /// cache-less ablation turns it off).
    pub emc_enabled: bool,
    /// Microflow cache capacity in entries (OVS EMC default: 8192).
    pub emc_entries: usize,
    /// Set associativity of the microflow cache (OVS: 2-way).
    pub emc_ways: usize,
    /// Probability of inserting a flow into the microflow cache after a
    /// megaflow hit. OVS-DPDK ships 1/100 to bound insertion overhead;
    /// 1.0 makes small tests deterministic.
    pub emc_insert_prob: f64,
    /// Maximum megaflow entries before installs are refused (OVS
    /// `flow-limit`, default 200 000).
    pub flow_limit: usize,
    /// Megaflow idle timeout (OVS default 10 s) — evicted by the
    /// revalidator if unused this long. Sets the covert refresh
    /// bandwidth the attack needs (paper: 1–2 Mb/s).
    pub idle_timeout: SimTime,
    /// Cadence of the revalidator's idle sweep (OVS sweeps roughly once
    /// a second). Values of zero are clamped to 1 ns by the
    /// revalidator. Runtime-adjustable via
    /// [`crate::VSwitch::set_revalidator_interval`].
    pub revalidator_interval: SimTime,
    /// Scope of the cache invalidation a policy change triggers. False
    /// (the OVS behaviour the paper attacks) flushes the megaflow cache
    /// wholesale; true evicts only the megaflows pinned to the updated
    /// destination ([`crate::MegaflowCache::evict_destination`] — sound
    /// because this pipeline's megaflows always pin `ip_dst`), leaving
    /// other tenants' fast-path state intact. The scoped path also
    /// scopes the microflow cache: only EMC entries keyed to the updated
    /// destination are evicted
    /// ([`crate::MicroflowCache::evict_destination`]), so benign flows
    /// keep their EMC hits across an unrelated tenant's ACL install.
    pub scoped_invalidation: bool,
    /// Fields with prefix tries enabled for megaflow generation. The
    /// paper's mask counts (8 / 512 / 8192) require tries on the IP
    /// source and the L4 ports, matching the demo's OVS configuration.
    pub trie_fields: Vec<Field>,
    /// Enables staged subtable lookup (mitigation ablation).
    pub staged_lookup: bool,
    /// Subtable walk order (mitigation ablation uses hit-count sorting).
    pub subtable_order: SubtableOrder,
    /// How megaflow misses reach the slow path: synchronously
    /// ([`PipelineMode::Inline`], the historical semantics) or through
    /// the bounded per-port upcall pipeline
    /// ([`PipelineMode::Bounded`]).
    pub pipeline: PipelineMode,
    /// Seed for the datapath's internal randomness (EMC way eviction,
    /// probabilistic insertion).
    pub seed: u64,
    /// Which dataplane architecture to build when this config reaches a
    /// simulator node (`pi_backend::build_backend`). [`crate::VSwitch`]
    /// itself ignores the field — constructing one directly always
    /// yields the OVS-style pipeline the other variants are compared
    /// against.
    pub backend: BackendKind,
}

impl Default for DpConfig {
    fn default() -> Self {
        DpConfig {
            emc_enabled: true,
            emc_entries: 8192,
            emc_ways: 2,
            emc_insert_prob: 1.0,
            flow_limit: 200_000,
            idle_timeout: SimTime::from_secs(10),
            revalidator_interval: SimTime::from_secs(1),
            scoped_invalidation: false,
            trie_fields: vec![Field::IpSrc, Field::IpDst, Field::TpSrc, Field::TpDst],
            staged_lookup: false,
            subtable_order: SubtableOrder::Insertion,
            pipeline: PipelineMode::Inline,
            seed: 0x05_eed0_f0e5,
            backend: BackendKind::OvsCache,
        }
    }
}

impl DpConfig {
    /// OVS-DPDK-flavoured defaults: probabilistic EMC insertion.
    pub fn dpdk_like() -> Self {
        DpConfig {
            emc_insert_prob: 0.01,
            ..Self::default()
        }
    }

    /// The cache-less configuration used by the mitigation comparison.
    pub fn no_emc() -> Self {
        DpConfig {
            emc_enabled: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_deployment() {
        let c = DpConfig::default();
        assert!(c.emc_enabled);
        assert_eq!(c.emc_entries, 8192);
        assert_eq!(c.emc_ways, 2);
        assert_eq!(c.flow_limit, 200_000);
        assert_eq!(c.idle_timeout, SimTime::from_secs(10));
        assert_eq!(c.revalidator_interval, SimTime::from_secs(1));
        assert!(!c.scoped_invalidation, "global flush is the OVS default");
        assert!(c.trie_fields.contains(&Field::IpSrc));
        assert!(c.trie_fields.contains(&Field::TpSrc));
        assert!(c.trie_fields.contains(&Field::TpDst));
        assert!(!c.staged_lookup);
        assert_eq!(c.subtable_order, SubtableOrder::Insertion);
        assert_eq!(c.pipeline, PipelineMode::Inline, "inline is the default");
        assert_eq!(
            c.backend,
            BackendKind::OvsCache,
            "the paper's target pipeline is the default architecture"
        );
    }

    #[test]
    fn variants() {
        assert_eq!(DpConfig::dpdk_like().emc_insert_prob, 0.01);
        assert!(!DpConfig::no_emc().emc_enabled);
    }

    #[test]
    fn backend_kind_names_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
            assert_eq!(
                BackendKind::parse(&kind.name().replace('_', "-")),
                Some(kind)
            );
            assert_eq!(format!("{kind}"), kind.name());
        }
        assert_eq!(BackendKind::parse("OVS_CACHE"), Some(BackendKind::OvsCache));
        assert_eq!(BackendKind::parse("not-a-backend"), None);
    }
}
