//! The megaflow cache: wildcard entries over Tuple Space Search.

use pi_classifier::{Action, LookupOutcome, SubtableOrder, TupleSpaceSearch};
use pi_core::{FlowKey, KeyWords, MaskedKey, SimTime};

/// One cached megaflow: a verdict plus usage bookkeeping for the
/// revalidator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MegaflowEntry {
    /// The cached verdict.
    pub action: Action,
    /// Installation time.
    pub created: SimTime,
    /// Last lookup that hit this entry.
    pub last_used: SimTime,
    /// Number of hits since installation.
    pub hits: u64,
}

/// Result of trying to install a generated megaflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstallOutcome {
    /// A new entry (and possibly a new subtable/mask) was created.
    Installed,
    /// An identical masked key was already cached (its verdict is
    /// refreshed — policy changes rebuild the cache wholesale).
    AlreadyPresent,
    /// The flow limit was reached; the datapath keeps running but this
    /// flow stays uncached (every packet re-upcalls — OVS behaviour
    /// under flow-table pressure).
    TableFull,
}

/// Counters for megaflow cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MfcStats {
    /// Entries installed.
    pub installs: u64,
    /// Installs refused by the flow limit.
    pub install_drops: u64,
    /// Entries evicted as idle by the revalidator.
    pub idle_evictions: u64,
}

/// The megaflow cache proper.
#[derive(Debug, Clone)]
pub struct MegaflowCache {
    tss: TupleSpaceSearch<MegaflowEntry>,
    flow_limit: usize,
    stats: MfcStats,
}

impl MegaflowCache {
    /// Creates a cache with the given entry limit and subtable ordering.
    pub fn new(flow_limit: usize, order: SubtableOrder, staged: bool) -> Self {
        let tss = if staged {
            TupleSpaceSearch::new(order).with_staged_lookup()
        } else {
            TupleSpaceSearch::new(order)
        };
        MegaflowCache {
            tss,
            flow_limit,
            stats: MfcStats::default(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.tss.len()
    }

    /// True if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.tss.is_empty()
    }

    /// Number of distinct masks — the attack's observable (Fig. 3's
    /// right axis).
    pub fn mask_count(&self) -> usize {
        self.tss.subtable_count()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MfcStats {
        self.stats
    }

    /// TSS-level lookup statistics (probe totals).
    pub fn tss_stats(&self) -> pi_classifier::TssStats {
        self.tss.stats()
    }

    /// Looks up `key`, updating the hit entry's usage stamps.
    /// The outcome's probe counts feed the cost model.
    pub fn lookup(&mut self, key: &FlowKey, now: SimTime) -> LookupOutcome<Action> {
        self.lookup_with(key, &KeyWords::of(key), now)
    }

    /// [`MegaflowCache::lookup`] with the packet's words already
    /// extracted, so the subtable walk re-uses the datapath's one-pass
    /// hash work.
    pub fn lookup_with(
        &mut self,
        key: &FlowKey,
        words: &KeyWords,
        now: SimTime,
    ) -> LookupOutcome<Action> {
        let out = self.tss.lookup_mut_with(key, words);
        let value = out.value.map(|e| {
            e.hits += 1;
            e.last_used = now;
            e.action
        });
        LookupOutcome {
            value,
            probes: out.probes,
            stage_checks: out.stage_checks,
        }
    }

    /// Installs a generated megaflow.
    pub fn install(&mut self, mk: MaskedKey, action: Action, now: SimTime) -> InstallOutcome {
        if let Some(existing) = self.tss.get_mut(&mk) {
            existing.action = action;
            existing.last_used = now;
            return InstallOutcome::AlreadyPresent;
        }
        if self.tss.len() >= self.flow_limit {
            self.stats.install_drops += 1;
            return InstallOutcome::TableFull;
        }
        self.tss.insert(
            mk,
            MegaflowEntry {
                action,
                created: now,
                last_used: now,
                hits: 0,
            },
        );
        self.stats.installs += 1;
        InstallOutcome::Installed
    }

    /// Toggles staged subtable lookup at runtime (retrofitting or
    /// dropping the per-subtable stage indexes) — the adaptive defense
    /// controller's actuator for the staged-lookup mitigation.
    pub fn set_staged_lookup(&mut self, enabled: bool) {
        self.tss.set_staged_lookup(enabled);
    }

    /// Evicts every megaflow whose mask pins `ip_dst` exactly to `ip` —
    /// the offender-quarantine actuator: because this pipeline's
    /// megaflows always pin the destination, this removes precisely the
    /// entries (and, once empty, the masks) one pod's ACL generated.
    /// Returns how many entries were removed.
    pub fn evict_destination(&mut self, ip: u32) -> usize {
        let full = pi_core::Field::IpDst.full_mask();
        let mut evicted = 0;
        self.tss.retain(|mk, _| {
            let doomed = mk.mask().field(pi_core::Field::IpDst) == full && mk.key().ip_dst == ip;
            if doomed {
                evicted += 1;
            }
            !doomed
        });
        evicted
    }

    /// Evicts entries idle for longer than `idle_timeout`; returns how
    /// many were removed. Empty subtables (masks) disappear with their
    /// last entry, which is what lets a victim recover after an attack
    /// stops (Fig. 3 would decay after the covert stream ends).
    pub fn evict_idle(&mut self, now: SimTime, idle_timeout: SimTime) -> usize {
        let mut evicted = 0;
        self.tss.retain(|_, e| {
            let keep = now.saturating_sub(e.last_used) <= idle_timeout;
            if !keep {
                evicted += 1;
            }
            keep
        });
        self.stats.idle_evictions += evicted as u64;
        evicted
    }

    /// Iterates `(masked key, entry)` for diagnostics and tests.
    pub fn iter(&self) -> impl Iterator<Item = (MaskedKey, &MegaflowEntry)> {
        self.tss.iter()
    }

    /// Drops everything (policy change).
    pub fn clear(&mut self) {
        self.tss.clear();
    }

    /// Direct entry access by masked key.
    pub fn get(&self, mk: &MaskedKey) -> Option<&MegaflowEntry> {
        self.tss.get(mk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::{Field, FlowMask};

    fn mk(ip: [u8; 4], len: u8) -> MaskedKey {
        MaskedKey::new(
            FlowKey::tcp(ip, [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, len),
        )
    }

    fn cache() -> MegaflowCache {
        MegaflowCache::new(100, SubtableOrder::Insertion, false)
    }

    #[test]
    fn install_then_hit_updates_usage() {
        let mut c = cache();
        let t0 = SimTime::from_secs(1);
        assert_eq!(
            c.install(mk([10, 0, 0, 0], 8), Action::Allow, t0),
            InstallOutcome::Installed
        );
        let t1 = SimTime::from_secs(2);
        let out = c.lookup(&FlowKey::tcp([10, 9, 9, 9], [0, 0, 0, 0], 0, 0), t1);
        assert_eq!(out.value, Some(Action::Allow));
        let e = c.get(&mk([10, 0, 0, 0], 8)).unwrap();
        assert_eq!(e.hits, 1);
        assert_eq!(e.last_used, t1);
        assert_eq!(e.created, t0);
    }

    #[test]
    fn reinstall_is_already_present() {
        let mut c = cache();
        let t = SimTime::ZERO;
        c.install(mk([10, 0, 0, 0], 8), Action::Allow, t);
        assert_eq!(
            c.install(mk([10, 0, 0, 0], 8), Action::Deny, t),
            InstallOutcome::AlreadyPresent
        );
        assert_eq!(c.len(), 1);
        // Verdict refreshed.
        let out = c.lookup(&FlowKey::tcp([10, 0, 0, 1], [0, 0, 0, 0], 0, 0), t);
        assert_eq!(out.value, Some(Action::Deny));
    }

    #[test]
    fn flow_limit_refuses_installs() {
        let mut c = MegaflowCache::new(3, SubtableOrder::Insertion, false);
        let t = SimTime::ZERO;
        for i in 0..3u8 {
            assert_eq!(
                c.install(mk([10 + i, 0, 0, 0], 8), Action::Allow, t),
                InstallOutcome::Installed
            );
        }
        assert_eq!(
            c.install(mk([99, 0, 0, 0], 8), Action::Allow, t),
            InstallOutcome::TableFull
        );
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().install_drops, 1);
        // Existing entries can still be refreshed at the limit.
        assert_eq!(
            c.install(mk([10, 0, 0, 0], 8), Action::Allow, t),
            InstallOutcome::AlreadyPresent
        );
    }

    #[test]
    fn idle_eviction_removes_only_stale() {
        let mut c = cache();
        c.install(mk([10, 0, 0, 0], 8), Action::Allow, SimTime::ZERO);
        c.install(mk([11, 0, 0, 0], 16), Action::Allow, SimTime::ZERO);
        // Keep 11/16 warm.
        c.lookup(
            &FlowKey::tcp([11, 0, 1, 1], [0, 0, 0, 0], 0, 0),
            SimTime::from_secs(9),
        );
        let evicted = c.evict_idle(SimTime::from_secs(12), SimTime::from_secs(10));
        assert_eq!(evicted, 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.mask_count(), 1, "empty subtable must disappear");
        assert_eq!(c.stats().idle_evictions, 1);
    }

    #[test]
    fn mask_count_tracks_distinct_masks() {
        let mut c = cache();
        let t = SimTime::ZERO;
        c.install(mk([10, 0, 0, 0], 8), Action::Allow, t);
        c.install(mk([11, 0, 0, 0], 8), Action::Allow, t); // same mask
        c.install(mk([12, 0, 0, 0], 16), Action::Allow, t);
        assert_eq!(c.len(), 3);
        assert_eq!(c.mask_count(), 2);
    }

    #[test]
    fn miss_walks_all_subtables() {
        let mut c = cache();
        let t = SimTime::ZERO;
        for len in 1..=16u8 {
            c.install(mk([10, 0, 0, 0], len), Action::Deny, t);
        }
        let out = c.lookup(&FlowKey::tcp([200, 0, 0, 1], [0, 0, 0, 0], 0, 0), t);
        assert_eq!(out.value, None);
        assert_eq!(out.probes, 16);
    }

    #[test]
    fn evict_destination_removes_only_the_pinned_dst() {
        let mut c = cache();
        let t = SimTime::ZERO;
        let pinned = |dst: [u8; 4], len: u8| {
            MaskedKey::new(
                FlowKey::tcp([10, 0, 0, 0], dst, 0, 0),
                FlowMask::default()
                    .with_prefix(Field::IpSrc, len)
                    .with_exact(Field::IpDst),
            )
        };
        c.install(pinned([10, 0, 0, 9], 8), Action::Deny, t);
        c.install(pinned([10, 0, 0, 9], 16), Action::Deny, t);
        c.install(pinned([10, 0, 0, 7], 8), Action::Allow, t);
        // A dst-wildcarded megaflow (not produced by this pipeline, but
        // legal in the cache) must never be evicted by dst.
        c.install(mk([12, 0, 0, 0], 8), Action::Allow, t);
        assert_eq!(c.evict_destination(u32::from_be_bytes([10, 0, 0, 9])), 2);
        assert_eq!(c.len(), 2);
        assert!(c.get(&pinned([10, 0, 0, 7], 8)).is_some());
        assert!(c.get(&mk([12, 0, 0, 0], 8)).is_some());
        assert_eq!(c.evict_destination(u32::from_be_bytes([9, 9, 9, 9])), 0);
        // The quarantined destination's masks disappeared with it: only
        // the /8+dst mask (shared with .7) and the wildcard-dst mask
        // remain.
        assert_eq!(c.mask_count(), 2);
    }

    #[test]
    fn staged_lookup_toggles_at_runtime() {
        let mut c = cache();
        c.install(mk([10, 0, 0, 0], 8), Action::Allow, SimTime::ZERO);
        c.set_staged_lookup(true);
        // Still finds its entries after the retrofit.
        let out = c.lookup(
            &FlowKey::tcp([10, 1, 1, 1], [0, 0, 0, 0], 0, 0),
            SimTime::ZERO,
        );
        assert_eq!(out.value, Some(Action::Allow));
        c.set_staged_lookup(false);
        let out = c.lookup(
            &FlowKey::tcp([10, 1, 1, 1], [0, 0, 0, 0], 0, 0),
            SimTime::ZERO,
        );
        assert_eq!(out.value, Some(Action::Allow));
    }

    #[test]
    fn clear_and_iter() {
        let mut c = cache();
        c.install(mk([10, 0, 0, 0], 8), Action::Allow, SimTime::ZERO);
        c.install(mk([11, 0, 0, 0], 16), Action::Deny, SimTime::ZERO);
        assert_eq!(c.iter().count(), 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.mask_count(), 0);
    }
}
