//! The CPU cycle cost model.
//!
//! Every fast-path operation the datapath counts (hash probes, stage
//! checks, rules scanned) is priced in CPU cycles here, and nowhere else.
//! The simulator multiplies packets/second by these costs against a fixed
//! cycle budget, so throughput degradation under attack follows from the
//! data-structure dynamics — there is no "attack effect" constant.
//!
//! Calibration targets (see EXPERIMENTS.md): with the default budget of
//! one ~1.2 GHz-effective softirq core, an un-attacked switch forwards a
//! 1 Gb/s victim easily (the link, not the CPU, binds — Fig. 3's
//! pre-attack plateau), and a covert stream of a few Mb/s whose packets
//! each walk ~8192 subtables exhausts the core (Fig. 3's collapse).

use crate::vswitch::PathTaken;

/// Per-operation cycle prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Parsing a frame into a flow key (`flow_extract`).
    pub parse: u64,
    /// One microflow-cache probe (hash + compare).
    pub emc_probe: u64,
    /// Inserting into the microflow cache.
    pub emc_insert: u64,
    /// Fixed overhead of visiting one subtable (pointer chase, prefetch
    /// misses) — paid per subtable probed.
    pub per_subtable: u64,
    /// Hashing one stage's worth of masked key bytes — paid per stage
    /// check (a full probe of an `s`-stage subtable costs `s` of these).
    pub per_stage_hash: u64,
    /// Fixed cost of an upcall (fast-path → slow-path round trip).
    pub upcall_fixed: u64,
    /// Scanning one rule during slow-path linear classification.
    pub per_rule: u64,
    /// Installing a generated megaflow entry.
    pub mfc_install: u64,
    /// Fixed datapath-side cost of one control-plane policy update
    /// landing on the switch (netlink round trip, table swap) —
    /// charged per applied ACL install/removal or pod attach.
    pub acl_update_fixed: u64,
    /// Tearing down one cached megaflow during a policy-change
    /// invalidation — what makes a flush storm's *direct* cost scale
    /// with cache occupancy (the rebuild upcalls are priced on top, by
    /// the ordinary miss path).
    pub flush_per_entry: u64,
    /// Fixed cost of a switch crash/restart: process respawn, datapath
    /// re-registration, port re-attach. Charged once against the
    /// node's budget at restart; the *indirect* price — every flow
    /// cold-missing into the wiped caches — emerges from the ordinary
    /// miss accounting, exactly like a flush storm's rebuild.
    pub restart_fixed: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            parse: 80,
            emc_probe: 40,
            emc_insert: 100,
            per_subtable: 12,
            per_stage_hash: 48,
            upcall_fixed: 30_000,
            per_rule: 300,
            mfc_install: 2_000,
            acl_update_fixed: 50_000,
            flush_per_entry: 120,
            restart_fixed: 2_000_000,
        }
    }
}

impl CostModel {
    /// Cycles for a packet that took `path`, excluding parse (charged
    /// separately because frames may arrive pre-parsed in tests).
    ///
    /// Deferred paths ([`PathTaken::UpcallQueued`],
    /// [`PathTaken::UpcallDropped`]) cover only the fast-path share of
    /// the miss (EMC probe + failed subtable walk); the handler share is
    /// priced separately by [`CostModel::handler_cycles`], and the two
    /// sum to exactly the inline [`PathTaken::Upcall`] cost.
    pub fn path_cycles(&self, path: &PathTaken) -> u64 {
        match path {
            PathTaken::MicroflowHit => self.emc_probe,
            PathTaken::UpcallQueued {
                probes,
                stage_checks,
                emc_probed,
                ..
            }
            | PathTaken::UpcallDropped {
                probes,
                stage_checks,
                emc_probed,
            } => {
                let mut c =
                    *probes as u64 * self.per_subtable + *stage_checks as u64 * self.per_stage_hash;
                if *emc_probed {
                    c += self.emc_probe;
                }
                c
            }
            PathTaken::MegaflowHit {
                probes,
                stage_checks,
                emc_probed,
                emc_inserted,
            } => {
                let mut c =
                    *probes as u64 * self.per_subtable + *stage_checks as u64 * self.per_stage_hash;
                if *emc_probed {
                    c += self.emc_probe;
                }
                if *emc_inserted {
                    c += self.emc_insert;
                }
                c
            }
            PathTaken::Upcall {
                probes,
                stage_checks,
                rules_examined,
                installed,
                emc_probed,
                emc_inserted,
            } => {
                let mut c = *probes as u64 * self.per_subtable
                    + *stage_checks as u64 * self.per_stage_hash
                    + self.upcall_fixed
                    + *rules_examined as u64 * self.per_rule;
                if *installed {
                    c += self.mfc_install;
                }
                if *emc_probed {
                    c += self.emc_probe;
                }
                if *emc_inserted {
                    c += self.emc_insert;
                }
                c
            }
        }
    }

    /// Total cycles for a packet: parse + path.
    pub fn packet_cycles(&self, path: &PathTaken) -> u64 {
        self.parse + self.path_cycles(path)
    }

    /// Cycles one control-plane policy update costs the datapath: the
    /// fixed update handling plus the teardown of every megaflow its
    /// invalidation flushed. This is the *direct* price of a flush; the
    /// indirect price — every flushed flow's next packet re-upcalling —
    /// emerges from the ordinary miss accounting, which is what makes
    /// the policy-flap storm's amplification honest rather than
    /// scripted.
    pub fn control_update_cycles(&self, flushed_megaflows: usize) -> u64 {
        self.acl_update_fixed + flushed_megaflows as u64 * self.flush_per_entry
    }

    /// Handler-side cycles of resolving one deferred upcall: the
    /// slow-path round trip, linear classification, the (batched)
    /// megaflow install and the EMC promotion. Together with the
    /// [`PathTaken::UpcallQueued`] fast-path share this equals the
    /// inline upcall cost — the bounded pipeline moves work, it never
    /// invents or loses any.
    pub fn handler_cycles(
        &self,
        rules_examined: usize,
        installed: bool,
        emc_inserted: bool,
    ) -> u64 {
        let mut c = self.upcall_fixed + rules_examined as u64 * self.per_rule;
        if installed {
            c += self.mfc_install;
        }
        if emc_inserted {
            c += self.emc_insert;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emc_hit_is_cheapest() {
        let m = CostModel::default();
        let emc = m.packet_cycles(&PathTaken::MicroflowHit);
        let mfc = m.packet_cycles(&PathTaken::MegaflowHit {
            probes: 1,
            stage_checks: 1,
            emc_probed: true,
            emc_inserted: false,
        });
        let upcall = m.packet_cycles(&PathTaken::Upcall {
            probes: 1,
            stage_checks: 1,
            rules_examined: 2,
            installed: true,
            emc_probed: true,
            emc_inserted: true,
        });
        assert!(emc < mfc);
        assert!(mfc < upcall);
    }

    #[test]
    fn megaflow_cost_linear_in_probes() {
        let m = CostModel::default();
        let cost = |probes: usize| {
            m.path_cycles(&PathTaken::MegaflowHit {
                probes,
                stage_checks: probes, // 1 stage per subtable
                emc_probed: false,
                emc_inserted: false,
            })
        };
        let c1 = cost(1);
        let c2 = cost(2);
        let c100 = cost(100);
        assert_eq!(c2 - c1, m.per_subtable + m.per_stage_hash);
        assert_eq!(c100, 100 * (m.per_subtable + m.per_stage_hash));
    }

    #[test]
    fn attack_scale_sanity() {
        // One covert packet forced through 8192 single-stage subtables
        // costs ~0.5 M cycles: ~2 400 such packets/s (≈1.2 Mb/s of
        // 64-byte frames) exhaust a 1.2 GHz-effective core — the paper's
        // "low-bandwidth (1–2 Mbps) covert packet stream".
        let m = CostModel::default();
        let per_packet = m.packet_cycles(&PathTaken::MegaflowHit {
            probes: 8192,
            stage_checks: 8192,
            emc_probed: true,
            emc_inserted: false,
        });
        let budget: u64 = 1_200_000_000;
        let pps = budget / per_packet;
        assert!(
            (1_500..5_000).contains(&pps),
            "expected a few-kpps ceiling under full walks, got {pps} ({per_packet} cycles/pkt)"
        );
    }

    #[test]
    fn deferred_shares_sum_to_the_inline_upcall_cost() {
        let m = CostModel::default();
        let inline = m.packet_cycles(&PathTaken::Upcall {
            probes: 17,
            stage_checks: 23,
            rules_examined: 2,
            installed: true,
            emc_probed: true,
            emc_inserted: true,
        });
        let queued = m.packet_cycles(&PathTaken::UpcallQueued {
            probes: 17,
            stage_checks: 23,
            emc_probed: true,
            token: 0,
        });
        let handler = m.handler_cycles(2, true, true);
        assert_eq!(queued + handler, inline);
        // A dropped upcall is charged exactly the fast-path share.
        let dropped = m.packet_cycles(&PathTaken::UpcallDropped {
            probes: 17,
            stage_checks: 23,
            emc_probed: true,
        });
        assert_eq!(dropped, queued);
    }

    #[test]
    fn control_update_cost_scales_with_flushed_entries() {
        let m = CostModel::default();
        assert_eq!(m.control_update_cycles(0), m.acl_update_fixed);
        assert_eq!(
            m.control_update_cycles(1_000) - m.control_update_cycles(0),
            1_000 * m.flush_per_entry
        );
        // A full-table flush (200 k entries) costs cycles comparable to
        // hundreds of upcalls — expensive, but the dominant damage is
        // the rebuild, which the miss path prices separately.
        assert!(m.control_update_cycles(200_000) > 100 * m.upcall_fixed);
    }

    #[test]
    fn upcall_includes_linear_scan() {
        let m = CostModel::default();
        let small = m.path_cycles(&PathTaken::Upcall {
            probes: 0,
            stage_checks: 0,
            rules_examined: 2,
            installed: false,
            emc_probed: false,
            emc_inserted: false,
        });
        let big = m.path_cycles(&PathTaken::Upcall {
            probes: 0,
            stage_checks: 0,
            rules_examined: 1000,
            installed: false,
            emc_probed: false,
            emc_inserted: false,
        });
        assert_eq!(big - small, 998 * m.per_rule);
    }
}
