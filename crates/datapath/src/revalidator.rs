//! The revalidator: periodic megaflow garbage collection.
//!
//! OVS's revalidator threads sweep the datapath roughly once a second,
//! deleting flows idle longer than `idle_timeout` (10 s by default).
//! For the attacker this is the metronome: every injected megaflow must
//! be refreshed at least once per idle window or its mask disappears —
//! which is exactly why the paper's covert stream only needs 1–2 Mb/s
//! (8192 refreshes / 10 s ≈ 820 pps of minimum-size frames).

use pi_core::SimTime;

use crate::megaflow::MegaflowCache;

/// Outcome of one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RevalidatorReport {
    /// When the sweep ran.
    pub at: SimTime,
    /// Entries evicted for idleness.
    pub evicted_idle: usize,
    /// Entries remaining after the sweep.
    pub remaining: usize,
    /// Masks remaining after the sweep.
    pub masks_remaining: usize,
}

/// Periodic idle-flow eviction.
#[derive(Debug, Clone)]
pub struct Revalidator {
    interval: SimTime,
    idle_timeout: SimTime,
    next_due: SimTime,
}

impl Revalidator {
    /// A revalidator sweeping every `interval`, evicting entries idle
    /// longer than `idle_timeout`. A zero `interval` is clamped to 1 ns
    /// (a sweep every observation) — it would otherwise wedge the
    /// catch-up loop in [`Revalidator::maybe_sweep`].
    pub fn new(interval: SimTime, idle_timeout: SimTime) -> Self {
        let interval = interval.max(SimTime::from_nanos(1));
        Revalidator {
            interval,
            idle_timeout,
            next_due: interval,
        }
    }

    /// The configured idle timeout.
    pub fn idle_timeout(&self) -> SimTime {
        self.idle_timeout
    }

    /// The sweep interval in force.
    pub fn interval(&self) -> SimTime {
        self.interval
    }

    /// Changes the sweep interval at runtime, re-arming `next_due` on
    /// the new interval's grid: the next deadline becomes the smallest
    /// whole multiple of `interval` strictly after `now`. Zero is
    /// clamped to 1 ns, as in [`Revalidator::new`].
    pub fn set_interval(&mut self, interval: SimTime, now: SimTime) {
        let interval = interval.max(SimTime::from_nanos(1));
        self.interval = interval;
        let periods = now.as_nanos() / interval.as_nanos();
        self.next_due = SimTime::from_nanos((periods + 1) * interval.as_nanos());
    }

    /// When the next sweep is due. Always a whole multiple of the
    /// interval: a step that overshoots (a long simulation gap, or a
    /// handler drain that ran past the boundary) re-anchors to the
    /// interval grid instead of drifting to `overshoot + interval`.
    pub fn next_due(&self) -> SimTime {
        self.next_due
    }

    /// Runs the sweep if it is due; returns a report when it ran.
    /// Call this with monotonically non-decreasing `now`.
    pub fn maybe_sweep(
        &mut self,
        mfc: &mut MegaflowCache,
        now: SimTime,
    ) -> Option<RevalidatorReport> {
        if now < self.next_due {
            return None;
        }
        // Catch up (a long simulation gap still yields one sweep).
        while self.next_due <= now {
            self.next_due += self.interval;
        }
        Some(self.sweep_now(mfc, now))
    }

    /// Unconditionally sweeps (tests, explicit flush points).
    pub fn sweep_now(&self, mfc: &mut MegaflowCache, now: SimTime) -> RevalidatorReport {
        let evicted_idle = mfc.evict_idle(now, self.idle_timeout);
        RevalidatorReport {
            at: now,
            evicted_idle,
            remaining: mfc.len(),
            masks_remaining: mfc.mask_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_classifier::{Action, SubtableOrder};
    use pi_core::{Field, FlowKey, FlowMask, MaskedKey};

    fn mk(i: u8) -> MaskedKey {
        MaskedKey::new(
            FlowKey::tcp([i, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        )
    }

    fn cache_with(n: u8, t: SimTime) -> MegaflowCache {
        let mut c = MegaflowCache::new(1000, SubtableOrder::Insertion, false);
        for i in 0..n {
            c.install(mk(i), Action::Allow, t);
        }
        c
    }

    #[test]
    fn sweep_fires_on_schedule() {
        let mut r = Revalidator::new(SimTime::from_secs(1), SimTime::from_secs(10));
        let mut mfc = cache_with(3, SimTime::ZERO);
        assert!(r.maybe_sweep(&mut mfc, SimTime::from_millis(999)).is_none());
        let report = r.maybe_sweep(&mut mfc, SimTime::from_secs(1)).unwrap();
        assert_eq!(report.evicted_idle, 0);
        assert_eq!(report.remaining, 3);
        // Not due again until t = 2 s.
        assert!(r
            .maybe_sweep(&mut mfc, SimTime::from_millis(1500))
            .is_none());
    }

    #[test]
    fn idle_flows_evicted_after_timeout() {
        let r = Revalidator::new(SimTime::from_secs(1), SimTime::from_secs(10));
        let mut mfc = cache_with(5, SimTime::ZERO);
        // Keep one entry alive at t = 8 s.
        mfc.lookup(
            &FlowKey::tcp([2, 1, 1, 1], [0, 0, 0, 0], 0, 0),
            SimTime::from_secs(8),
        );
        let report = r.sweep_now(&mut mfc, SimTime::from_secs(11));
        assert_eq!(report.evicted_idle, 4);
        assert_eq!(report.remaining, 1);
    }

    #[test]
    fn long_gap_yields_single_catchup_sweep() {
        let mut r = Revalidator::new(SimTime::from_secs(1), SimTime::from_secs(10));
        let mut mfc = cache_with(2, SimTime::ZERO);
        let report = r.maybe_sweep(&mut mfc, SimTime::from_secs(60)).unwrap();
        assert_eq!(report.evicted_idle, 2);
        // Next due strictly after now.
        assert!(r.maybe_sweep(&mut mfc, SimTime::from_secs(60)).is_none());
        assert!(r.maybe_sweep(&mut mfc, SimTime::from_secs(61)).is_some());
    }

    #[test]
    fn eviction_boundary_is_exact_idle_timeout() {
        // An entry is kept at *exactly* idle_timeout of idleness and
        // evicted one nanosecond past it — the boundary the covert
        // stream's refresh economics are computed against.
        let r = Revalidator::new(SimTime::from_secs(1), SimTime::from_secs(10));
        let mut mfc = cache_with(1, SimTime::ZERO);
        let at_boundary = r.sweep_now(&mut mfc, SimTime::from_secs(10));
        assert_eq!(at_boundary.evicted_idle, 0, "idle == timeout survives");
        let past = r.sweep_now(&mut mfc, SimTime::from_secs(10) + SimTime::from_nanos(1));
        assert_eq!(past.evicted_idle, 1, "idle > timeout is reclaimed");
    }

    #[test]
    fn next_due_stays_on_the_interval_grid_after_overshoot() {
        let mut r = Revalidator::new(SimTime::from_secs(1), SimTime::from_secs(10));
        let mut mfc = cache_with(1, SimTime::ZERO);
        assert_eq!(r.next_due(), SimTime::from_secs(1));
        // A step overshoots the boundary by 0.7 s: the sweep runs, and
        // the next deadline is the *grid* point 3.0 s — not 3.7 s.
        assert!(r
            .maybe_sweep(&mut mfc, SimTime::from_millis(2_700))
            .is_some());
        assert_eq!(r.next_due(), SimTime::from_secs(3));
        // Landing exactly on the deadline sweeps and advances one step.
        assert!(r.maybe_sweep(&mut mfc, SimTime::from_secs(3)).is_some());
        assert_eq!(r.next_due(), SimTime::from_secs(4));
        // Repeated overshoots never accumulate drift.
        for s in 4..20u64 {
            r.maybe_sweep(&mut mfc, SimTime::from_secs(s) + SimTime::from_millis(999));
            assert_eq!(r.next_due(), SimTime::from_secs(s + 1));
        }
    }

    #[test]
    fn set_interval_rearms_on_the_new_grid() {
        let mut r = Revalidator::new(SimTime::from_secs(1), SimTime::from_secs(10));
        let mut mfc = cache_with(1, SimTime::ZERO);
        assert!(r.maybe_sweep(&mut mfc, SimTime::from_secs(2)).is_some());
        assert_eq!(r.next_due(), SimTime::from_secs(3));
        // Shrink to 250 ms at t = 2.1 s: the next deadline is the grid
        // point 2.25 s, not 2.1 s + 250 ms and not the stale 3 s.
        r.set_interval(SimTime::from_millis(250), SimTime::from_millis(2_100));
        assert_eq!(r.interval(), SimTime::from_millis(250));
        assert_eq!(r.next_due(), SimTime::from_millis(2_250));
        assert!(r
            .maybe_sweep(&mut mfc, SimTime::from_millis(2_249))
            .is_none());
        assert!(r
            .maybe_sweep(&mut mfc, SimTime::from_millis(2_250))
            .is_some());
        assert_eq!(r.next_due(), SimTime::from_millis(2_500));
        // Landing exactly on a grid point re-arms to the *next* one.
        r.set_interval(SimTime::from_secs(1), SimTime::from_secs(4));
        assert_eq!(r.next_due(), SimTime::from_secs(5));
        // Growing the interval also re-anchors (no sweep owed at 2.75 s).
        r.set_interval(SimTime::ZERO, SimTime::from_secs(5));
        assert_eq!(r.interval(), SimTime::from_nanos(1), "zero clamps");
    }

    #[test]
    fn zero_interval_is_clamped_not_wedged() {
        let mut r = Revalidator::new(SimTime::ZERO, SimTime::from_secs(10));
        let mut mfc = cache_with(1, SimTime::ZERO);
        // Must terminate (pre-fix this looped forever) and sweep.
        assert!(r.maybe_sweep(&mut mfc, SimTime::from_secs(5)).is_some());
        assert!(r.next_due() > SimTime::from_secs(5));
    }

    #[test]
    fn refresh_rate_bounds_attacker_bandwidth() {
        // The attack-economics property: refreshing every entry once per
        // idle window keeps all masks alive forever.
        let mut r = Revalidator::new(SimTime::from_secs(1), SimTime::from_secs(10));
        let mut mfc = cache_with(50, SimTime::ZERO);
        for sec in 1..=30u64 {
            let now = SimTime::from_secs(sec);
            if sec % 9 == 0 {
                // Refresh everything (the covert stream's periodic pass).
                for i in 0..50u8 {
                    mfc.lookup(&FlowKey::tcp([i, 1, 1, 1], [0, 0, 0, 0], 0, 0), now);
                }
            }
            r.maybe_sweep(&mut mfc, now);
        }
        assert_eq!(mfc.len(), 50, "refreshed flows must all survive");
        // Stop refreshing: all evicted within one idle window + sweep.
        for sec in 31..=45u64 {
            r.maybe_sweep(&mut mfc, SimTime::from_secs(sec));
        }
        assert_eq!(mfc.len(), 0);
        assert_eq!(mfc.mask_count(), 0);
    }
}
