//! The slow path: full classification + megaflow generation.
//!
//! [`SlowPath`] is a *pure* classifier: it never touches caches, queues
//! or statistics, so the same code serves both pipeline modes — invoked
//! synchronously from [`crate::VSwitch::process`] under
//! [`crate::PipelineMode::Inline`], and from handler steps
//! ([`crate::VSwitch::drain_upcalls`]) under
//! [`crate::PipelineMode::Bounded`].
//!
//! This is where the paper's Fig. 2 happens. Classification itself is a
//! linear scan (correct, slow — that's why it's cached). The interesting
//! part is **un-wildcarding**: after deciding a packet's fate, the slow
//! path computes the *broadest* megaflow that still classifies every
//! covered packet identically ("OVS … tries to wildcard as many bits as
//! possible to get the broadest possible rules", §2).
//!
//! For each field constrained by some rule:
//! * if every constraint on the field is a CIDR prefix and the field has
//!   a trie enabled, the [`pi_classifier::PrefixTrie`] yields the minimal
//!   number of leading bits that pins down *which prefixes the value
//!   falls under* — `common_prefix + 1` for mismatches, the prefix length
//!   for matches (Fig. 2b's decomposition);
//! * otherwise the union of the rules' mask bits on that field is used
//!   (always sound, never minimal).
//!
//! Soundness (pinned by proptest in `tests/megaflow_soundness.rs`): two
//! packets agreeing on every un-wildcarded bit satisfy exactly the same
//! set of rule constraints, hence the same winning rule.

use pi_classifier::{Action, FlowTable, LinearClassifier};
use pi_core::{Field, FlowKey, FlowMask, MaskedKey};

/// A compiled slow path for one virtual port: the ACL table plus the
/// metadata megaflow generation needs.
#[derive(Debug, Clone)]
pub struct SlowPath {
    table: FlowTable,
    tries: pi_classifier::table::TrieSet,
    active: FlowMask,
    /// Action when no rule matches (OpenFlow table-miss: drop).
    default_action: Action,
}

impl SlowPath {
    /// Compiles a slow path from an ACL table. `trie_fields` lists the
    /// fields with prefix tries enabled (from
    /// [`crate::DpConfig::trie_fields`]).
    pub fn new(table: FlowTable, trie_fields: &[Field], default_action: Action) -> Self {
        let tries = table.build_tries(trie_fields);
        let active = table.active_mask();
        SlowPath {
            table,
            tries,
            active,
            default_action,
        }
    }

    /// An always-`default_action` slow path (ports without ACLs).
    pub fn permissive(default_action: Action) -> Self {
        Self::new(FlowTable::new(), &[], default_action)
    }

    /// The underlying flow table.
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// The table-miss action.
    pub fn default_action(&self) -> Action {
        self.default_action
    }

    /// Full classification: the verdict plus the number of rules
    /// examined (the linear-scan cost the fast path exists to avoid).
    pub fn classify(&self, packet: &FlowKey) -> (Action, usize) {
        let (rule, examined) = LinearClassifier::new(&self.table).classify_counting(packet);
        (
            rule.map(|r| r.action).unwrap_or(self.default_action),
            examined,
        )
    }

    /// Generates the megaflow mask for `packet` over this table's fields
    /// (the caller adds switch metadata such as the ingress port).
    pub fn unwildcard(&self, packet: &FlowKey) -> FlowMask {
        let mut mask = FlowMask::WILDCARD;
        for field in self.active.touched_fields() {
            let bits = match self.tries.get(field) {
                Some(ft) if !ft.has_non_prefix && !ft.trie.is_empty() => {
                    let n = ft.trie.unwildcard_bits(packet.field(field));
                    field.prefix_mask(n)
                }
                // No trie for this field (or non-prefix constraints):
                // fall back to the union of rule bits — sound, broadest
                // *safe* choice without per-value analysis.
                _ => self.active.field(field),
            };
            mask.unwildcard(field, bits);
        }
        mask
    }

    /// The full slow-path service of one upcall: classify and produce
    /// the megaflow to cache.
    pub fn process_upcall(&self, packet: &FlowKey) -> UpcallResult {
        let (action, rules_examined) = self.classify(packet);
        let mask = self.unwildcard(packet);
        UpcallResult {
            action,
            megaflow: MaskedKey::new(*packet, mask),
            rules_examined,
        }
    }
}

/// What the slow path hands back to the datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpcallResult {
    /// The verdict for this packet (and the whole megaflow).
    pub action: Action,
    /// The generated cache entry: `packet & mask` with the minimal mask.
    pub megaflow: MaskedKey,
    /// Rules examined during linear classification.
    pub rules_examined: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_classifier::table::whitelist_with_default_deny;
    use pi_core::ALL_FIELDS;

    /// The paper's Fig. 2 ACL on the real 32-bit field: allow
    /// 10.0.0.0/8, deny everything else.
    fn fig2_slowpath() -> SlowPath {
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        );
        SlowPath::new(
            whitelist_with_default_deny(&[allow]),
            &[Field::IpSrc],
            Action::Deny,
        )
    }

    #[test]
    fn classify_whitelist() {
        let sp = fig2_slowpath();
        let (a, n) = sp.classify(&FlowKey::tcp([10, 1, 2, 3], [0, 0, 0, 0], 5, 6));
        assert_eq!(a, Action::Allow);
        assert_eq!(n, 2);
        let (a, _) = sp.classify(&FlowKey::tcp([77, 1, 2, 3], [0, 0, 0, 0], 5, 6));
        assert_eq!(a, Action::Deny);
    }

    #[test]
    fn fig2b_in_prefix_megaflow_is_slash8() {
        let sp = fig2_slowpath();
        let up = sp.process_upcall(&FlowKey::tcp([10, 7, 7, 7], [9, 9, 9, 9], 5, 6));
        assert_eq!(up.action, Action::Allow);
        assert_eq!(
            up.megaflow.mask().field(Field::IpSrc),
            Field::IpSrc.prefix_mask(8)
        );
        assert_eq!(up.megaflow.key().ip_src, 0x0a00_0000);
        // Nothing else constrained.
        for f in ALL_FIELDS {
            if f != Field::IpSrc {
                assert_eq!(up.megaflow.mask().field(f), 0, "{f} should be wildcard");
            }
        }
    }

    #[test]
    fn fig2b_complement_masks_are_minimal() {
        let sp = fig2_slowpath();
        // First octet 128 = 1….: differs from 10 (0000 1010) at bit 0.
        let up = sp.process_upcall(&FlowKey::tcp([128, 0, 0, 1], [9, 9, 9, 9], 5, 6));
        assert_eq!(up.action, Action::Deny);
        assert_eq!(
            up.megaflow.mask().field(Field::IpSrc),
            Field::IpSrc.prefix_mask(1)
        );
        // First octet 11 = 0000 1011: differs at bit 7 → 8 bits.
        let up = sp.process_upcall(&FlowKey::tcp([11, 0, 0, 1], [9, 9, 9, 9], 5, 6));
        assert_eq!(
            up.megaflow.mask().field(Field::IpSrc),
            Field::IpSrc.prefix_mask(8)
        );
    }

    #[test]
    fn megaflow_covers_only_same_verdict_packets() {
        let sp = fig2_slowpath();
        let pkt = FlowKey::tcp([12, 34, 56, 78], [9, 9, 9, 9], 1000, 80);
        let up = sp.process_upcall(&pkt);
        // 12 = 0000 1100: diverges from 10 = 0000 1010 at bit 5 → 6 bits.
        assert_eq!(
            up.megaflow.mask().field(Field::IpSrc),
            Field::IpSrc.prefix_mask(6)
        );
        // Every witness with the same 6 leading bits is denied too.
        for first_octet in [12u8, 13, 14, 15] {
            let p = FlowKey::tcp([first_octet, 0, 0, 0], [1, 1, 1, 1], 2, 3);
            assert!(up.megaflow.matches(&p));
            assert_eq!(sp.classify(&p).0, Action::Deny);
        }
        // 10.x must not be covered.
        assert!(!up
            .megaflow
            .matches(&FlowKey::tcp([10, 0, 0, 0], [1, 1, 1, 1], 2, 3)));
    }

    #[test]
    fn two_field_acl_multiplies_unwildcarded_fields() {
        // allow ip_src=10.0.0.1/32 AND tp_dst=80 — the paper's 512-mask
        // building block.
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 1], [0, 0, 0, 0], 0, 80),
            FlowMask::default()
                .with_exact(Field::IpSrc)
                .with_exact(Field::TpDst),
        );
        let sp = SlowPath::new(
            whitelist_with_default_deny(&[allow]),
            &[Field::IpSrc, Field::TpDst],
            Action::Deny,
        );
        // Packet matching the allow rule: both fields fully exact.
        let up = sp.process_upcall(&FlowKey::tcp([10, 0, 0, 1], [5, 5, 5, 5], 999, 80));
        assert_eq!(up.action, Action::Allow);
        assert_eq!(up.megaflow.mask().field(Field::IpSrc), 0xffff_ffff);
        assert_eq!(up.megaflow.mask().field(Field::TpDst), 0xffff);
        // Deny packet diverging early in IP and late in port: masks are
        // per-field independent — the cross-product mechanism.
        // ip 128.0.0.1 → 1 bit; port 81 (vs 80) → 16 bits.
        let up = sp.process_upcall(&FlowKey::tcp([128, 0, 0, 1], [5, 5, 5, 5], 999, 81));
        assert_eq!(up.action, Action::Deny);
        assert_eq!(
            up.megaflow.mask().field(Field::IpSrc),
            Field::IpSrc.prefix_mask(1)
        );
        assert_eq!(
            up.megaflow.mask().field(Field::TpDst),
            Field::TpDst.prefix_mask(16)
        );
    }

    #[test]
    fn trie_disabled_falls_back_to_rule_union() {
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        );
        // No tries at all: every deny packet gets the /8 union mask.
        let sp = SlowPath::new(whitelist_with_default_deny(&[allow]), &[], Action::Deny);
        let up = sp.process_upcall(&FlowKey::tcp([200, 0, 0, 1], [9, 9, 9, 9], 5, 6));
        assert_eq!(
            up.megaflow.mask().field(Field::IpSrc),
            Field::IpSrc.prefix_mask(8),
            "fallback uses union of rule bits"
        );
    }

    #[test]
    fn non_prefix_rule_disables_trie_for_that_field() {
        // A rule matching tp_dst & 0x00ff (low byte) is not CIDR-shaped.
        let odd = MaskedKey::new(
            FlowKey::tcp([0, 0, 0, 0], [0, 0, 0, 0], 0, 0x0050),
            FlowMask::default().with(Field::TpDst, 0x00ff),
        );
        let sp = SlowPath::new(
            whitelist_with_default_deny(&[odd]),
            &[Field::TpDst],
            Action::Deny,
        );
        let up = sp.process_upcall(&FlowKey::tcp([1, 1, 1, 1], [2, 2, 2, 2], 5, 0x1150));
        // Fallback: union of rule bits = 0x00ff.
        assert_eq!(up.megaflow.mask().field(Field::TpDst), 0x00ff);
        assert_eq!(up.action, Action::Allow); // low byte 0x50 matches
    }

    #[test]
    fn permissive_slowpath_generates_wildcard_megaflow() {
        let sp = SlowPath::permissive(Action::Allow);
        let up = sp.process_upcall(&FlowKey::tcp([1, 2, 3, 4], [5, 6, 7, 8], 9, 10));
        assert_eq!(up.action, Action::Allow);
        assert!(up.megaflow.mask().is_wildcard_all());
        assert_eq!(up.rules_examined, 0);
    }

    #[test]
    fn empty_table_uses_default_action() {
        let sp = SlowPath::permissive(Action::Deny);
        assert_eq!(sp.classify(&FlowKey::default()).0, Action::Deny);
        assert_eq!(sp.default_action(), Action::Deny);
    }
}
