//! Operator-facing cache introspection, `ovs-dpctl dump-flows` style.
//!
//! The paper's demo audience watches the megaflow count climb; an
//! operator debugging a live incident needs the flows themselves. These
//! helpers render the megaflow cache in a familiar text format and
//! summarise the mask population (the first thing to look at when a
//! node's softirq load is unexplained).

use std::fmt::Write as _;

use pi_core::{Field, SimTime, ALL_FIELDS};

use crate::vswitch::VSwitch;

/// Renders every megaflow as one `ovs-dpctl`-flavoured line:
/// `field(value/mask),… actions:<action> used:<age> packets:<hits>`.
/// Lines are sorted for stable output.
pub fn dump_flows(switch: &VSwitch, now: SimTime) -> String {
    let mut lines: Vec<String> = switch
        .megaflows()
        .iter()
        .map(|(mk, entry)| {
            let mut line = String::new();
            for f in ALL_FIELDS {
                let mask = mk.mask().field(f);
                if mask == 0 {
                    continue;
                }
                let value = mk.key().field(f);
                if f == Field::IpSrc || f == Field::IpDst {
                    let _ = write!(
                        line,
                        "{}({}/{}),",
                        f.name(),
                        std::net::Ipv4Addr::from(value as u32),
                        std::net::Ipv4Addr::from(mask as u32)
                    );
                } else if mask == f.full_mask() {
                    let _ = write!(line, "{}({}),", f.name(), value);
                } else {
                    let _ = write!(line, "{}({:#x}/{:#x}),", f.name(), value, mask);
                }
            }
            let age = now.saturating_sub(entry.last_used);
            let _ = write!(
                line,
                " actions:{} used:{} packets:{}",
                entry.action, age, entry.hits
            );
            line
        })
        .collect();
    lines.sort();
    lines.join("\n")
}

/// One row of the mask summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskSummaryRow {
    /// Human-readable mask shape (e.g. `ip_src/8,tp_dst`).
    pub mask: String,
    /// Entries under this mask.
    pub entries: usize,
    /// Total hits across those entries.
    pub hits: u64,
}

/// Groups the cache by mask, descending by entry count — the
/// "who is filling my subtable vector" view.
pub fn mask_summary(switch: &VSwitch) -> Vec<MaskSummaryRow> {
    use std::collections::BTreeMap;
    let mut rows: BTreeMap<String, (usize, u64)> = BTreeMap::new();
    for (mk, entry) in switch.megaflows().iter() {
        let r = rows.entry(mk.mask().to_string()).or_default();
        r.0 += 1;
        r.1 += entry.hits;
    }
    let mut out: Vec<MaskSummaryRow> = rows
        .into_iter()
        .map(|(mask, (entries, hits))| MaskSummaryRow {
            mask,
            entries,
            hits,
        })
        .collect();
    out.sort_by_key(|r| std::cmp::Reverse(r.entries));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DpConfig;
    use pi_classifier::table::whitelist_with_default_deny;
    use pi_core::{FlowKey, FlowMask, MaskedKey};

    fn switch_with_traffic() -> VSwitch {
        let pod = u32::from_be_bytes([10, 1, 0, 66]);
        let mut sw = VSwitch::new(DpConfig {
            trie_fields: vec![Field::IpSrc],
            ..DpConfig::default()
        });
        sw.attach_pod(pod, 1);
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        );
        sw.install_acl(pod, whitelist_with_default_deny(&[allow]));
        sw.process(
            &FlowKey::tcp([10, 2, 3, 4], [10, 1, 0, 66], 5, 80),
            SimTime::from_secs(1),
        );
        sw.process(
            &FlowKey::tcp([128, 0, 0, 1], [10, 1, 0, 66], 5, 80),
            SimTime::from_secs(2),
        );
        sw
    }

    #[test]
    fn dump_contains_masks_actions_and_ages() {
        let sw = switch_with_traffic();
        let dump = dump_flows(&sw, SimTime::from_secs(3));
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        // The allowed /8 flow.
        assert!(dump.contains("ip_src(10.0.0.0/255.0.0.0)"), "dump:\n{dump}");
        assert!(dump.contains("actions:allow"));
        // The denied /1 flow.
        assert!(dump.contains("ip_src(128.0.0.0/128.0.0.0)"));
        assert!(dump.contains("actions:deny"));
        // ip_dst pinned by routing on every line.
        assert!(lines
            .iter()
            .all(|l| l.contains("ip_dst(10.1.0.66/255.255.255.255)")));
        // Ages rendered from `now`.
        assert!(dump.contains("used:2.000s") || dump.contains("used:1.000s"));
    }

    #[test]
    fn mask_summary_groups_and_sorts() {
        let mut sw = switch_with_traffic();
        // Add another entry under the same /8 mask.
        sw.process(
            &FlowKey::tcp([10, 9, 9, 9], [10, 1, 0, 66], 5, 80),
            SimTime::from_secs(2),
        );
        // All 10.x traffic shares the /8 megaflow → 1 entry, but the
        // second denied packet differs: send one more deny at /2 depth.
        sw.process(
            &FlowKey::tcp([64, 0, 0, 1], [10, 1, 0, 66], 5, 80),
            SimTime::from_secs(2),
        );
        let summary = mask_summary(&sw);
        assert!(summary.len() >= 2);
        let total_entries: usize = summary.iter().map(|r| r.entries).sum();
        assert_eq!(total_entries, sw.megaflow_count());
        // Sorted descending by entries.
        for w in summary.windows(2) {
            assert!(w[0].entries >= w[1].entries);
        }
    }

    #[test]
    fn empty_switch_dumps_empty() {
        let sw = VSwitch::new(DpConfig::default());
        assert!(dump_flows(&sw, SimTime::ZERO).is_empty());
        assert!(mask_summary(&sw).is_empty());
    }
}
