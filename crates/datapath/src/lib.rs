//! # pi-datapath — the OVS-like virtual switch under attack
//!
//! Reproduces the Open vSwitch processing pipeline the paper targets
//! (§2, "The Open vSwitch pipeline"):
//!
//! 1. **Microflow cache** ([`MicroflowCache`]) — a bounded, hash-indexed
//!    exact-match store over the full flow key. First line of defence;
//!    the attack thrashes it with unique covert packets.
//! 2. **Megaflow cache** ([`MegaflowCache`]) — wildcard entries grouped
//!    by mask in a Tuple Space Search; lookup walks subtables linearly.
//!    This is the structure whose mask count the attack inflates.
//! 3. **Slow path** ([`SlowPath`]) — full flow-table classification plus
//!    *megaflow generation*: trie-guided minimal un-wildcarding that
//!    produces exactly the paper's Fig. 2b decomposition.
//!
//! [`VSwitch`] ties the levels together per packet and reports which path
//! was taken and how many CPU cycles it cost under a calibrated
//! [`CostModel`]; the [`Revalidator`] implements idle timeout and flow
//! limits, which set the covert bandwidth the attacker needs.
//!
//! Misses reach the slow path either synchronously
//! ([`PipelineMode::Inline`]) or through the bounded per-port **upcall
//! pipeline** ([`upcall`]): finite queues, a per-step handler cycle
//! budget, and batched megaflow installs — the machinery a slow-path
//! DoS saturates.
//!
//! The cycle accounting is mechanical — cycles are a linear function of
//! the counted hash probes, stage checks, rules examined — so throughput
//! collapse in the simulator is a *consequence* of the data structure
//! dynamics, never scripted.

pub mod config;
pub mod cost;
pub mod dump;
pub mod emc;
pub mod megaflow;
pub mod revalidator;
pub mod slowpath;
pub mod upcall;
pub mod vswitch;

pub use config::{BackendKind, DpConfig};
pub use cost::CostModel;
pub use dump::{dump_flows, mask_summary};
pub use emc::MicroflowCache;
pub use megaflow::{InstallOutcome, MegaflowCache, MegaflowEntry};
pub use revalidator::{Revalidator, RevalidatorReport};
pub use slowpath::SlowPath;
pub use upcall::{
    PipelineMode, PortUpcallStats, UpcallPipelineConfig, UpcallStats, UNROUTABLE_QUEUE,
};
pub use vswitch::{
    PathTaken, PolicyUpdateOutcome, ProcessOutcome, ResolvedUpcall, RestartOutcome, SwitchStats,
    VSwitch,
};
