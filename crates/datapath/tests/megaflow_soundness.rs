//! Randomised property tests for megaflow generation (DESIGN.md
//! invariants 3–5).
//!
//! Invariant 3 (soundness): for every generated megaflow `(k, m, a)` and
//! every packet `p` with `p & m == k`, slow-path classification of `p`
//! yields `a`. The cache may be coarse or fine, but it must never change
//! what the flow table would have said.
//!
//! Invariant 4 (non-overlap): megaflows generated from the same table
//! never disagree on a shared packet.
//!
//! Cases come from the deterministic in-house [`SplitMix64`] generator
//! (no external dependencies).

use pi_classifier::table::whitelist_with_default_deny;
use pi_classifier::Action;
use pi_core::{Field, FlowKey, FlowMask, MaskedKey, SplitMix64};
use pi_datapath::SlowPath;

const CASES: u64 = 192;

/// Whitelists over ip_src prefixes and optional exact ports — the shape
/// every CMS dialect compiles to.
fn rand_whitelist(rng: &mut SplitMix64) -> Vec<MaskedKey> {
    let n = 1 + rng.gen_range(5);
    (0..n)
        .map(|_| {
            let ip = rng.next_u32();
            let len = 1 + rng.gen_range(32) as u8;
            let dst = rng.gen_bool(0.5).then(|| 1 + rng.gen_range(1023) as u16);
            let src = rng.gen_bool(0.5).then(|| 1 + rng.gen_range(1023) as u16);
            let mut key = FlowKey::tcp(std::net::Ipv4Addr::from(ip), [0, 0, 0, 0], 0, 0);
            let mut mask = FlowMask::default().with_prefix(Field::IpSrc, len);
            if let Some(d) = dst {
                key.tp_dst = d;
                mask = mask.with_exact(Field::TpDst);
            }
            if let Some(s) = src {
                key.tp_src = s;
                mask = mask.with_exact(Field::TpSrc);
            }
            MaskedKey::new(key, mask)
        })
        .collect()
}

fn rand_packet(rng: &mut SplitMix64) -> FlowKey {
    FlowKey::tcp(
        std::net::Ipv4Addr::from(rng.next_u32()),
        [10, 0, 0, 9],
        rng.next_u32() as u16,
        rng.next_u32() as u16,
    )
}

const TRIE_FIELDS: [Field; 3] = [Field::IpSrc, Field::TpSrc, Field::TpDst];

/// Randomised matching packets for a masked key: wildcarded bits filled
/// from a seeded RNG.
fn random_matching_packets(mk: &MaskedKey, seed: u64, n: usize) -> Vec<FlowKey> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let mut p = *mk.key();
            for f in pi_core::ALL_FIELDS {
                let mask = mk.mask().field(f);
                let free = f.full_mask() & !mask;
                let v = (p.field(f) & mask) | (rng.next_u64() & free);
                p.set_field(f, v).unwrap();
            }
            p
        })
        .collect()
}

/// Invariant 3: every packet covered by a generated megaflow gets
/// the same verdict the slow path gives.
#[test]
fn megaflow_soundness() {
    pi_core::for_cases(CASES, 0x31, |rng| {
        let whitelist = rand_whitelist(rng);
        let trigger = rand_packet(rng);
        let seed = rng.next_u64();
        let sp = SlowPath::new(
            whitelist_with_default_deny(&whitelist),
            &TRIE_FIELDS,
            Action::Deny,
        );
        let up = sp.process_upcall(&trigger);
        // The triggering packet itself must be covered and agree.
        assert!(up.megaflow.matches(&trigger));
        assert_eq!(sp.classify(&trigger).0, up.action);
        // And so must arbitrary packets in the megaflow's cover.
        for p in random_matching_packets(&up.megaflow, seed, 16) {
            assert!(up.megaflow.matches(&p));
            assert_eq!(
                sp.classify(&p).0,
                up.action,
                "megaflow {} overgeneralises: packet {} differs from trigger {}",
                up.megaflow,
                p,
                trigger
            );
        }
    });
}

/// Invariant 4: megaflows generated for different packets either
/// don't overlap, or carry the same verdict (overlap with equal
/// verdicts is harmless; OVS guarantees full disjointness only per
/// identical mask, where hash replacement applies).
#[test]
fn megaflows_never_conflict() {
    pi_core::for_cases(CASES, 0x32, |rng| {
        let whitelist = rand_whitelist(rng);
        let a = rand_packet(rng);
        let b = rand_packet(rng);
        let sp = SlowPath::new(
            whitelist_with_default_deny(&whitelist),
            &TRIE_FIELDS,
            Action::Deny,
        );
        let ua = sp.process_upcall(&a);
        let ub = sp.process_upcall(&b);
        if ua.megaflow.overlaps(&ub.megaflow) {
            assert_eq!(
                ua.action, ub.action,
                "overlapping megaflows {} / {} with different verdicts",
                ua.megaflow, ub.megaflow
            );
        }
        // Same packet twice is deterministic.
        let ua2 = sp.process_upcall(&a);
        assert_eq!(ua.megaflow, ua2.megaflow);
        assert_eq!(ua.action, ua2.action);
    });
}

/// The megaflow always covers its triggering packet and is maximal
/// in the weak sense that it never exceeds the table's active bits.
#[test]
fn megaflow_mask_bounded_by_active_bits() {
    pi_core::for_cases(CASES, 0x33, |rng| {
        let whitelist = rand_whitelist(rng);
        let p = rand_packet(rng);
        let table = whitelist_with_default_deny(&whitelist);
        let active = table.active_mask();
        let sp = SlowPath::new(table, &TRIE_FIELDS, Action::Deny);
        let up = sp.process_upcall(&p);
        assert!(
            up.megaflow.mask().is_subset_of(&active),
            "unwildcarded bits outside any rule's mask"
        );
    });
}
