//! Property tests for megaflow generation (DESIGN.md invariants 3–5).
//!
//! Invariant 3 (soundness): for every generated megaflow `(k, m, a)` and
//! every packet `p` with `p & m == k`, slow-path classification of `p`
//! yields `a`. The cache may be coarse or fine, but it must never change
//! what the flow table would have said.
//!
//! Invariant 4 (non-overlap): megaflows generated from the same table
//! never disagree on a shared packet.

use pi_classifier::table::whitelist_with_default_deny;
use pi_classifier::Action;
use pi_core::{Field, FlowKey, FlowMask, MaskedKey, SplitMix64};
use pi_datapath::SlowPath;
use proptest::prelude::*;

/// Whitelists over ip_src prefixes and optional exact ports — the shape
/// every CMS dialect compiles to.
fn arb_whitelist() -> impl Strategy<Value = Vec<MaskedKey>> {
    proptest::collection::vec(
        (
            any::<u32>(), // ip value
            1u8..=32,     // ip prefix len
            prop_oneof![
                Just(None),
                (1u16..1024).prop_map(Some) // exact tp_dst
            ],
            prop_oneof![
                Just(None),
                (1u16..1024).prop_map(Some) // exact tp_src
            ],
        )
            .prop_map(|(ip, len, dst, src)| {
                let mut key = FlowKey::tcp(std::net::Ipv4Addr::from(ip), [0, 0, 0, 0], 0, 0);
                let mut mask = FlowMask::default().with_prefix(Field::IpSrc, len);
                if let Some(d) = dst {
                    key.tp_dst = d;
                    mask = mask.with_exact(Field::TpDst);
                }
                if let Some(s) = src {
                    key.tp_src = s;
                    mask = mask.with_exact(Field::TpSrc);
                }
                MaskedKey::new(key, mask)
            }),
        1..6,
    )
}

fn arb_packet() -> impl Strategy<Value = FlowKey> {
    (any::<u32>(), any::<u16>(), any::<u16>()).prop_map(|(ip, s, d)| {
        FlowKey::tcp(std::net::Ipv4Addr::from(ip), [10, 0, 0, 9], s, d)
    })
}

const TRIE_FIELDS: [Field; 3] = [Field::IpSrc, Field::TpSrc, Field::TpDst];

/// Randomised matching packets for a masked key: wildcarded bits filled
/// from a seeded RNG.
fn random_matching_packets(mk: &MaskedKey, seed: u64, n: usize) -> Vec<FlowKey> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let mut p = *mk.key();
            for f in pi_core::ALL_FIELDS {
                let mask = mk.mask().field(f);
                let free = f.full_mask() & !mask;
                let v = (p.field(f) & mask) | (rng.next_u64() & free);
                p.set_field(f, v).unwrap();
            }
            p
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Invariant 3: every packet covered by a generated megaflow gets
    /// the same verdict the slow path gives.
    #[test]
    fn megaflow_soundness(whitelist in arb_whitelist(), trigger in arb_packet(), seed in any::<u64>()) {
        let sp = SlowPath::new(
            whitelist_with_default_deny(&whitelist),
            &TRIE_FIELDS,
            Action::Deny,
        );
        let up = sp.process_upcall(&trigger);
        // The triggering packet itself must be covered and agree.
        prop_assert!(up.megaflow.matches(&trigger));
        prop_assert_eq!(sp.classify(&trigger).0, up.action);
        // And so must arbitrary packets in the megaflow's cover.
        for p in random_matching_packets(&up.megaflow, seed, 16) {
            prop_assert!(up.megaflow.matches(&p));
            prop_assert_eq!(
                sp.classify(&p).0,
                up.action,
                "megaflow {} overgeneralises: packet {} differs from trigger {}",
                up.megaflow, p, trigger
            );
        }
    }

    /// Invariant 4: megaflows generated for different packets either
    /// don't overlap, or carry the same verdict (overlap with equal
    /// verdicts is harmless; OVS guarantees full disjointness only per
    /// identical mask, where hash replacement applies).
    #[test]
    fn megaflows_never_conflict(whitelist in arb_whitelist(), a in arb_packet(), b in arb_packet()) {
        let sp = SlowPath::new(
            whitelist_with_default_deny(&whitelist),
            &TRIE_FIELDS,
            Action::Deny,
        );
        let ua = sp.process_upcall(&a);
        let ub = sp.process_upcall(&b);
        if ua.megaflow.overlaps(&ub.megaflow) {
            prop_assert_eq!(
                ua.action, ub.action,
                "overlapping megaflows {} / {} with different verdicts",
                ua.megaflow, ub.megaflow
            );
        }
        // Same packet twice is deterministic.
        let ua2 = sp.process_upcall(&a);
        prop_assert_eq!(ua.megaflow, ua2.megaflow);
        prop_assert_eq!(ua.action, ua2.action);
    }

    /// The megaflow always covers its triggering packet and is maximal
    /// in the weak sense that it never exceeds the table's active bits.
    #[test]
    fn megaflow_mask_bounded_by_active_bits(whitelist in arb_whitelist(), p in arb_packet()) {
        let table = whitelist_with_default_deny(&whitelist);
        let active = table.active_mask();
        let sp = SlowPath::new(table, &TRIE_FIELDS, Action::Deny);
        let up = sp.process_upcall(&p);
        prop_assert!(
            up.megaflow.mask().is_subset_of(&active),
            "unwildcarded bits outside any rule's mask"
        );
    }
}
