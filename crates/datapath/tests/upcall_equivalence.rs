//! `PipelineMode::Bounded` under zero capacity pressure (unbounded
//! queue, infinite handler budget, one drain per packet) must be
//! observationally identical to `PipelineMode::Inline`: per-packet
//! verdicts, outputs, resolved paths, total cycles, and every statistics
//! counter (`SwitchStats`, `EmcStats`, `MfcStats`, `TssStats`,
//! megaflow/mask populations). The pipeline only *moves* slow-path work
//! to a handler step; any divergence under these configs means it
//! changed semantics.
//!
//! The agreement granularity is the drain step: draining after every
//! packet makes each install land before the next packet, which is
//! exactly the inline schedule. (Coarser steps intentionally diverge —
//! that's the miss-to-install window the pipeline exists to model.)

use pi_classifier::table::whitelist_with_default_deny;
use pi_core::{Field, FlowKey, FlowMask, MaskedKey, SimTime, SplitMix64};
use pi_datapath::{DpConfig, PathTaken, PipelineMode, UpcallPipelineConfig, VSwitch};

const POD_A: [u8; 4] = [10, 0, 0, 99];
const POD_B: [u8; 4] = [10, 0, 0, 100];

/// Two pods; A whitelists 10/8 (off-net sources are denied and mint new
/// masks), B allows everything. Same topology as the batch-equivalence
/// suite so the packet mix exercises every pipeline level.
fn build_switch(pipeline: PipelineMode, staged: bool, flow_limit: usize) -> VSwitch {
    let mut sw = VSwitch::new(DpConfig {
        trie_fields: vec![Field::IpSrc],
        staged_lookup: staged,
        emc_entries: 64,
        emc_ways: 2,
        flow_limit,
        pipeline,
        ..DpConfig::default()
    });
    sw.attach_pod(u32::from_be_bytes(POD_A), 1);
    sw.attach_pod(u32::from_be_bytes(POD_B), 2);
    let allow = MaskedKey::new(
        FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
        FlowMask::default().with_prefix(Field::IpSrc, 8),
    );
    sw.install_acl(
        u32::from_be_bytes(POD_A),
        whitelist_with_default_deny(&[allow]),
    );
    sw
}

/// A deterministic mix of hot repeated flows (EMC traffic), fresh
/// allowed and denied sources (megaflow hits + upcalls) and unroutable
/// destinations.
fn packet_sequence(n: usize, seed: u64) -> Vec<FlowKey> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let dst = if rng.gen_bool(0.8) { POD_A } else { POD_B };
        let key = match rng.gen_range(4) {
            0 | 1 => FlowKey::tcp(
                [10, 0, 1, (rng.gen_range(4) + 1) as u8],
                dst,
                40_000 + rng.gen_range(4) as u16,
                5201,
            ),
            2 => FlowKey::tcp(
                [10, rng.gen_range(250) as u8 + 1, rng.next_u32() as u8, 7],
                dst,
                rng.gen_range(60_000) as u16 + 1,
                5201,
            ),
            _ => {
                if rng.gen_bool(0.3) {
                    FlowKey::tcp([10, 1, 1, 1], [172, 16, 0, 9], 555, 80)
                } else {
                    FlowKey::tcp([(rng.gen_range(100) + 100) as u8, 0, 0, 1], dst, 1000, 5201)
                }
            }
        };
        out.push(key);
    }
    out
}

fn assert_same_state(inline: &VSwitch, bounded: &VSwitch) {
    assert_eq!(inline.stats(), bounded.stats(), "SwitchStats diverged");
    assert_eq!(inline.emc_stats(), bounded.emc_stats(), "EmcStats diverged");
    assert_eq!(inline.mfc_stats(), bounded.mfc_stats(), "MfcStats diverged");
    assert_eq!(
        inline.megaflows().tss_stats(),
        bounded.megaflows().tss_stats(),
        "TssStats diverged"
    );
    assert_eq!(inline.mask_count(), bounded.mask_count());
    assert_eq!(inline.megaflow_count(), bounded.megaflow_count());
}

/// Feeds both switches the same timed sequence, draining the bounded
/// pipeline after every packet, and asserts bit-identical observations.
fn run_differential(staged: bool, flow_limit: usize, seed: u64, sweep: bool) {
    let keys = packet_sequence(600, seed);
    let mut inline = build_switch(PipelineMode::Inline, staged, flow_limit);
    let mut bounded = build_switch(
        PipelineMode::Bounded(UpcallPipelineConfig::unbounded()),
        staged,
        flow_limit,
    );

    let mut t = SimTime::from_millis(1);
    for (i, k) in keys.iter().enumerate() {
        let want = inline.process(k, t);

        let got = bounded.process(k, t);
        let resolved = if got.path.is_queued() {
            let mut out = Vec::new();
            let n = bounded.drain_upcalls(t, |r| out.push(r));
            assert_eq!(n, 1, "exactly the one pending upcall resolves");
            Some(out[0])
        } else {
            assert_eq!(bounded.drain_upcalls(t, |_| panic!("nothing pending")), 0);
            None
        };

        match resolved {
            None => assert_eq!(want, got, "fast-path outcome diverged at packet {i}"),
            Some(r) => {
                assert!(want.path.is_upcall(), "inline must also have upcalled");
                assert_eq!(r.key, *k);
                assert_eq!(r.outcome.verdict, want.verdict, "verdict diverged at {i}");
                assert_eq!(r.outcome.output, want.output, "routing diverged at {i}");
                assert_eq!(r.outcome.path, want.path, "resolved path diverged at {i}");
                // Fast-path share + handler share == inline total.
                assert_eq!(
                    got.cycles + r.outcome.cycles,
                    want.cycles,
                    "cycle split diverged at {i}"
                );
                match got.path {
                    PathTaken::UpcallQueued { probes, .. } => {
                        assert_eq!(probes, want.path.probes())
                    }
                    other => panic!("expected queued path, got {other:?}"),
                }
            }
        }
        if sweep && i % 97 == 0 {
            // The shared sweep clock: revalidation at the same instants
            // must keep the two switches in lockstep too.
            let a = inline.revalidate(t);
            let b = bounded.revalidate(t);
            assert_eq!(a, b, "revalidator reports diverged at {i}");
        }
        t += SimTime::from_micros(37);
    }
    assert_same_state(&inline, &bounded);
    let up = bounded.upcall_stats();
    assert_eq!(up.enqueued, up.handled, "nothing left pending");
    assert_eq!(up.queue_drops, 0, "unbounded queue never drops");
    assert_eq!(up.wait_steps, 0, "per-packet drain resolves immediately");
    assert_eq!(
        up.installs_flushed,
        inline.mfc_stats().installs + inline.mfc_stats().install_drops
    );
}

#[test]
fn bounded_zero_pressure_equals_inline() {
    run_differential(false, 200_000, 0xe9_u64 ^ 0x51de, false);
    run_differential(true, 200_000, 0x7a11, false);
}

#[test]
fn bounded_zero_pressure_equals_inline_under_flow_limit() {
    // A tight flow limit exercises the batched-install TableFull
    // prediction: refused installs must be reported (installed=false)
    // and counted exactly as inline does.
    run_differential(false, 40, 0xf10a_u64 ^ 0x9, false);
}

#[test]
fn bounded_zero_pressure_equals_inline_across_sweeps() {
    run_differential(false, 200_000, 0x5ee9, true);
}

/// The covert attack sequence end to end: populate + scan through both
/// pipeline modes, per-packet drain, identical cache shapes and stats.
#[test]
fn attack_sequence_equal_under_both_modes() {
    let spec_keys: Vec<FlowKey> = {
        // A hand-rolled analogue of the covert stream against pod A's
        // /8 whitelist: the 8 complement packets (each minting a deny
        // mask), the allow packet, then unique scan packets.
        let mut v = Vec::new();
        for o in [128u8, 64, 32, 16, 0, 12, 8, 11] {
            v.push(FlowKey::tcp([o, 0, 0, 1], POD_A, 1, 1));
        }
        v.push(FlowKey::tcp([10, 0, 0, 1], POD_A, 1, 1));
        for i in 0..500u16 {
            v.push(FlowKey::tcp(
                [10, 200, (i >> 8) as u8, i as u8],
                POD_A,
                1 + i,
                5201,
            ));
        }
        v
    };
    let mut inline = build_switch(PipelineMode::Inline, false, 200_000);
    let mut bounded = build_switch(
        PipelineMode::Bounded(UpcallPipelineConfig::unbounded()),
        false,
        200_000,
    );
    let mut t = SimTime::from_millis(1);
    for k in &spec_keys {
        let want = inline.process(k, t);
        let got = bounded.process(k, t);
        if got.path.is_queued() {
            bounded.drain_upcalls(t, |r| {
                assert_eq!(r.outcome.verdict, want.verdict);
                assert_eq!(r.outcome.path, want.path);
            });
        } else {
            assert_eq!(want, got);
        }
        t += SimTime::from_micros(100);
    }
    assert_same_state(&inline, &bounded);
    assert_eq!(
        bounded.mask_count(),
        8,
        "Fig. 2b masks through the pipeline"
    );
}
