//! `VSwitch::process_batch` must be observationally identical to N
//! sequential `VSwitch::process` calls on the same packet sequence —
//! verdicts, routing, per-packet paths and cycles, and every stats
//! counter (`SwitchStats`, `EmcStats`, `MfcStats`, `TssStats`). The
//! batch path only amortises hash work; any divergence means it changed
//! semantics (e.g. probing the EMC before an earlier packet of the same
//! batch could promote its flow).

use pi_classifier::table::whitelist_with_default_deny;

use pi_core::{Field, FlowKey, FlowMask, MaskedKey, SimTime, SplitMix64};
use pi_datapath::{DpConfig, VSwitch};

const POD_A: [u8; 4] = [10, 0, 0, 99];
const POD_B: [u8; 4] = [10, 0, 0, 100];

/// Two pods; A whitelists 10/8 (so off-net sources are denied and mint
/// new masks), B allows everything.
fn build_switch(staged: bool) -> VSwitch {
    let mut sw = VSwitch::new(DpConfig {
        trie_fields: vec![Field::IpSrc],
        staged_lookup: staged,
        // Small EMC so collisions/evictions happen at test scale.
        emc_entries: 64,
        emc_ways: 2,
        ..DpConfig::default()
    });
    sw.attach_pod(u32::from_be_bytes(POD_A), 1);
    sw.attach_pod(u32::from_be_bytes(POD_B), 2);
    let allow = MaskedKey::new(
        FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
        FlowMask::default().with_prefix(Field::IpSrc, 8),
    );
    sw.install_acl(
        u32::from_be_bytes(POD_A),
        whitelist_with_default_deny(&[allow]),
    );
    sw
}

/// A deterministic mix of repeated flows (EMC hits), fresh allowed and
/// denied sources (megaflow hits + upcalls), and unroutable
/// destinations; repeats are frequent enough that packets regularly hit
/// EMC entries promoted earlier **in the same batch**.
fn packet_sequence(n: usize, seed: u64) -> Vec<FlowKey> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let dst = if rng.gen_bool(0.8) { POD_A } else { POD_B };
        let key = match rng.gen_range(4) {
            // Hot flows: a handful of repeated 5-tuples.
            0 | 1 => FlowKey::tcp(
                [10, 0, 1, (rng.gen_range(4) + 1) as u8],
                dst,
                40_000 + rng.gen_range(4) as u16,
                5201,
            ),
            // Fresh on-net source (allowed at A, megaflow /8).
            2 => FlowKey::tcp(
                [10, rng.gen_range(250) as u8 + 1, rng.next_u32() as u8, 7],
                dst,
                rng.gen_range(60_000) as u16 + 1,
                5201,
            ),
            // Off-net source (denied at A) or unroutable destination.
            _ => {
                if rng.gen_bool(0.3) {
                    FlowKey::tcp([10, 1, 1, 1], [172, 16, 0, 9], 555, 80)
                } else {
                    FlowKey::tcp([(rng.gen_range(100) + 100) as u8, 0, 0, 1], dst, 1000, 5201)
                }
            }
        };
        out.push(key);
    }
    out
}

fn assert_same_state(seq: &VSwitch, bat: &VSwitch) {
    assert_eq!(seq.stats(), bat.stats(), "SwitchStats diverged");
    assert_eq!(seq.emc_stats(), bat.emc_stats(), "EmcStats diverged");
    assert_eq!(seq.mfc_stats(), bat.mfc_stats(), "MfcStats diverged");
    assert_eq!(
        seq.megaflows().tss_stats(),
        bat.megaflows().tss_stats(),
        "TssStats diverged"
    );
    assert_eq!(seq.mask_count(), bat.mask_count());
    assert_eq!(seq.megaflow_count(), bat.megaflow_count());
}

fn run_equivalence(staged: bool) {
    let keys = packet_sequence(500, 0xba7c ^ staged as u64);
    let mut sequential = build_switch(staged);
    let mut batched = build_switch(staged);

    let mut expected = Vec::with_capacity(keys.len());
    let mut t = SimTime::from_millis(1);
    for k in &keys {
        expected.push(sequential.process(k, t));
        t += SimTime::from_micros(3);
    }

    // The batch API sees the keys in arbitrary-size runs (exercising
    // sub-batch boundaries at BATCH_SIZE) — but each packet must get
    // the same per-packet timestamp the sequential run used.
    let mut got = Vec::with_capacity(keys.len());
    let mut t = SimTime::from_millis(1);
    for chunk in keys.chunks(97) {
        // One process_batch call per constant-time window is the real
        // usage; replicate per-packet times by calling per run of equal
        // timestamps — here timestamps advance per packet, so feed the
        // batch one packet-timestamp pair at a time via chunk loops.
        let mut idx = 0;
        while idx < chunk.len() {
            let n = batched.process_batch(&chunk[idx..idx + 1], t, |_, out| {
                got.push(out);
                true
            });
            assert_eq!(n, 1);
            t += SimTime::from_micros(3);
            idx += 1;
        }
    }
    assert_eq!(expected, got, "per-packet outcomes diverged");
    assert_same_state(&sequential, &batched);
}

/// Same timestamps, one packet per batch call: pure API equivalence.
#[test]
fn single_packet_batches_equal_sequential() {
    run_equivalence(false);
    run_equivalence(true);
}

/// Whole-sequence batches at a fixed timestamp: verdicts, paths and all
/// counters must equal sequential processing at that same timestamp —
/// including packets that EMC-hit entries promoted by earlier packets
/// of the *same* `process_batch` call.
#[test]
fn large_batches_equal_sequential_at_fixed_time() {
    for staged in [false, true] {
        let keys = packet_sequence(800, 0x5e9 ^ staged as u64);
        let now = SimTime::from_millis(5);

        let mut sequential = build_switch(staged);
        let expected: Vec<_> = keys.iter().map(|k| sequential.process(k, now)).collect();

        let mut batched = build_switch(staged);
        let mut got = Vec::with_capacity(keys.len());
        // 800 packets in one call = 25 internal sub-batches of 32.
        let n = batched.process_batch(&keys, now, |i, out| {
            assert_eq!(i, got.len(), "sink must see packets in order");
            got.push(out);
            true
        });
        assert_eq!(n, keys.len());
        assert_eq!(expected, got);
        assert_same_state(&sequential, &batched);

        // Microflow hits must actually occur within batches for the
        // equivalence to mean anything.
        let emc_hits = got.iter().filter(|o| o.path.is_microflow()).count();
        assert!(
            emc_hits > 100,
            "want intra-batch EMC traffic, got {emc_hits}"
        );
    }
}

/// A sink returning `false` stops the batch mid-run: exactly the
/// processed prefix is charged, later packets leave no trace.
#[test]
fn early_stop_processes_exact_prefix() {
    let keys = packet_sequence(100, 0x57);
    let now = SimTime::from_millis(9);
    let stop_after = 37usize;

    let mut sequential = build_switch(false);
    for k in keys.iter().take(stop_after) {
        sequential.process(k, now);
    }

    let mut batched = build_switch(false);
    let mut seen = 0usize;
    let n = batched.process_batch(&keys, now, |_, _| {
        seen += 1;
        seen < stop_after
    });
    assert_eq!(n, stop_after);
    assert_eq!(seen, stop_after);
    assert_same_state(&sequential, &batched);
}
