//! [`TraceReport`]: the merged, canonically ordered trace of one run.

use crate::cell::Tracer;
use crate::event::{TraceConfig, TraceEvent};

/// The canonical trace of one run: every host's ring merged into one
/// list ordered by `(at_ns, host, seq)`.
///
/// That key is a total order over events (each host's `seq` is
/// monotone), and every component of it is derived from sim state
/// only — so the merged trace is **bit-identical across worker
/// counts**, the same guarantee the fleet report carries. Per-worker
/// engine-profiling data (null-message exchanges, wake-heap churn) is
/// deliberately *not* part of this report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceReport {
    /// Merged events in canonical order.
    pub events: Vec<TraceEvent>,
    /// Total events overwritten across all rings (0 = complete trace).
    pub dropped: u64,
    /// The per-host ring capacity the run used.
    pub capacity: usize,
}

impl TraceReport {
    /// Merges the given tracers' rings into canonical order. Returns an
    /// empty report when tracing was disabled.
    pub fn collect(cfg: TraceConfig, tracers: &[Tracer]) -> Self {
        let mut events = Vec::new();
        let mut dropped = 0;
        for t in tracers {
            let (evs, d) = t.take();
            events.extend(evs);
            dropped += d;
        }
        events.sort_by_key(|e| (e.at_ns, e.host, e.seq));
        TraceReport {
            events,
            dropped,
            capacity: cfg.capacity,
        }
    }

    /// Whether any events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEventKind;

    #[test]
    fn collect_merges_hosts_into_canonical_order() {
        let cfg = TraceConfig::enabled();
        let a = Tracer::for_host(cfg, 0);
        let b = Tracer::for_host(cfg, 1);
        b.emit_uncaused(1_000_000, TraceEventKind::Reconcile { pushes: 1 });
        a.emit_uncaused(2_000_000, TraceEventKind::Reconcile { pushes: 2 });
        a.emit_uncaused(1_000_000, TraceEventKind::Reconcile { pushes: 0 });
        let report = TraceReport::collect(cfg, &[a, b]);
        assert_eq!(report.events.len(), 3);
        // (at_ns, host, seq): host 0's tick-1 event precedes host 1's,
        // despite being emitted later in wall order.
        assert_eq!(
            report
                .events
                .iter()
                .map(|e| (e.at_ns, e.host))
                .collect::<Vec<_>>(),
            vec![(1_000_000, 0), (1_000_000, 1), (2_000_000, 0)]
        );
    }
}
