//! The per-host recording state: [`TraceCell`] (the preallocated ring)
//! and [`Tracer`] (the cheap, cloneable handle threaded through the
//! dataplane, control plane, and defense layers).

use std::sync::{Arc, Mutex};

use crate::event::{CauseId, TraceConfig, TraceEvent, TraceEventKind};

/// One host's recording state: a preallocated overwrite-oldest ring of
/// [`TraceEvent`]s plus the causality bookkeeping.
///
/// `active_cause` is set while a policy update is being applied (so the
/// update's own events carry its id); `rebuild_cause` latches the id of
/// the most recent cache flush and is **never cleared** — window
/// aggregates and detections are attributed to the latest flush, which
/// under a flap attack is exactly the update driving the storm.
#[derive(Debug)]
pub struct TraceCell {
    host: u32,
    seq: u32,
    next_update_seq: u32,
    now_ns: u64,
    active_cause: CauseId,
    rebuild_cause: CauseId,
    capacity: usize,
    ring: Vec<TraceEvent>,
    start: usize,
    /// Events overwritten after the ring filled.
    pub dropped: u64,
}

impl TraceCell {
    /// A fresh cell for `host` with room for `capacity` events.
    pub fn new(host: u32, capacity: usize) -> Self {
        TraceCell {
            host,
            seq: 0,
            next_update_seq: 0,
            now_ns: 0,
            active_cause: CauseId::NONE,
            rebuild_cause: CauseId::NONE,
            capacity: capacity.max(1),
            ring: Vec::with_capacity(capacity.max(1)),
            start: 0,
            dropped: 0,
        }
    }

    // audit: hotpath
    fn push(&mut self, at_ns: u64, cause: CauseId, kind: TraceEventKind) {
        let ev = TraceEvent {
            at_ns,
            host: self.host,
            seq: self.seq,
            cause,
            kind,
        };
        self.seq = self.seq.wrapping_add(1);
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.start] = ev;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// The recorded events in emission order (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.start..]);
        out.extend_from_slice(&self.ring[..self.start]);
        out
    }
}

/// The handle every instrumented component holds. Internally an
/// `Option<Arc<Mutex<TraceCell>>>`:
///
/// - **Disabled** (`None`, the default): every method is a single
///   branch and returns immediately — no lock, no snapshot, no
///   allocation. This is the bench-proven zero-overhead guarantee.
/// - **Enabled**: clones share one per-host cell (the `NodeCell`, its
///   backend, its defense controller, and its reliable control plane
///   all record into the same ring, preserving one total per-host
///   order). The mutex is uncontended — a host's components run on one
///   worker thread — and `Send + Sync` lets the fleet move shards
///   across workers.
#[derive(Debug, Clone, Default)]
pub struct Tracer(Option<Arc<Mutex<TraceCell>>>);

impl Tracer {
    /// A disabled tracer (the default): all emissions are no-ops.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// A tracer for `host` under `cfg` — disabled unless `cfg.enabled`.
    pub fn for_host(cfg: TraceConfig, host: u32) -> Self {
        if cfg.enabled {
            Tracer(Some(Arc::new(Mutex::new(TraceCell::new(
                host,
                cfg.capacity,
            )))))
        } else {
            Tracer(None)
        }
    }

    /// Whether emissions record anything. Emission sites with a
    /// non-trivial payload to assemble (stats snapshots, diffs) must
    /// gate on this so disabled runs skip the assembly entirely.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records `kind` at `at_ns`, attributed to the latched rebuild
    /// cause (the most recent cache flush), or to the in-progress
    /// update if one is applying.
    #[inline]
    pub fn emit(&self, at_ns: u64, kind: TraceEventKind) {
        if let Some(cell) = &self.0 {
            let mut cell = cell.lock().unwrap();
            let cause = if cell.active_cause.is_some() {
                cell.active_cause
            } else {
                cell.rebuild_cause
            };
            cell.push(at_ns, cause, kind);
        }
    }

    /// Records `kind` with no causal attribution (crashes, reconcile
    /// passes — events that *start* chains rather than belong to one).
    #[inline]
    pub fn emit_uncaused(&self, at_ns: u64, kind: TraceEventKind) {
        if let Some(cell) = &self.0 {
            cell.lock().unwrap().push(at_ns, CauseId::NONE, kind);
        }
    }

    /// Allocates a fresh causality id and makes it the active cause:
    /// events emitted until [`Tracer::end_update`] carry it. Returns
    /// [`CauseId::NONE`] when disabled.
    #[inline]
    pub fn begin_update(&self) -> CauseId {
        match &self.0 {
            None => CauseId::NONE,
            Some(cell) => {
                let mut cell = cell.lock().unwrap();
                let id = CauseId::new(cell.host, cell.next_update_seq);
                cell.next_update_seq += 1;
                cell.active_cause = id;
                id
            }
        }
    }

    /// Ends the active update scope begun by [`Tracer::begin_update`].
    #[inline]
    pub fn end_update(&self) {
        if let Some(cell) = &self.0 {
            cell.lock().unwrap().active_cause = CauseId::NONE;
        }
    }

    /// Stamps the current sim time so components without a clock of
    /// their own (the dataplane backends' costed update entry points)
    /// can record correctly-timed events. The simulator calls this once
    /// per executed tick, gated on [`Tracer::is_enabled`].
    #[inline]
    pub fn set_now(&self, at_ns: u64) {
        if let Some(cell) = &self.0 {
            cell.lock().unwrap().now_ns = at_ns;
        }
    }

    /// Records one costed control-plane update at the stamped time
    /// (see [`Tracer::set_now`]), under the active cause; when the
    /// update's invalidation flushed state, also records the
    /// [`TraceEventKind::CacheFlush`] and latches the rebuild cause.
    /// This is the backends' one-call emission point.
    #[inline]
    pub fn emit_policy_update(
        &self,
        op: u8,
        cycles: u64,
        flushed: u32,
        scoped: bool,
        applied: bool,
    ) {
        if let Some(cell) = &self.0 {
            let mut cell = cell.lock().unwrap();
            let at_ns = cell.now_ns;
            let cause = cell.active_cause;
            cell.push(
                at_ns,
                cause,
                TraceEventKind::PolicyUpdate {
                    op,
                    cycles,
                    flushed,
                    scoped,
                    applied,
                },
            );
            if flushed > 0 {
                if cause.is_some() {
                    cell.rebuild_cause = cause;
                }
                cell.push(at_ns, cause, TraceEventKind::CacheFlush { flushed, scoped });
            }
        }
    }

    /// Records a cache flush under the active cause and **latches**
    /// that cause as the rebuild cause: subsequent windows and
    /// detections are attributed to this flush's update.
    #[inline]
    pub fn emit_flush(&self, at_ns: u64, flushed: u32, scoped: bool) {
        if let Some(cell) = &self.0 {
            let mut cell = cell.lock().unwrap();
            let cause = cell.active_cause;
            if cause.is_some() {
                cell.rebuild_cause = cause;
            }
            cell.push(at_ns, cause, TraceEventKind::CacheFlush { flushed, scoped });
        }
    }

    /// Snapshots the cell: events in emission order plus the overwrite
    /// count. Empty when disabled.
    pub fn take(&self) -> (Vec<TraceEvent>, u64) {
        match &self.0 {
            None => (Vec::new(), 0),
            Some(cell) => {
                let cell = cell.lock().unwrap();
                (cell.events(), cell.dropped)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(0, TraceEventKind::Reconcile { pushes: 1 });
        assert_eq!(t.begin_update(), CauseId::NONE);
        t.emit_flush(0, 3, true);
        t.end_update();
        assert_eq!(t.take().0.len(), 0);
    }

    #[test]
    fn update_scope_attributes_and_flush_latches() {
        let t = Tracer::for_host(TraceConfig::enabled(), 2);
        let id = t.begin_update();
        assert_eq!(id, CauseId::new(2, 0));
        t.emit(
            1_000_000,
            TraceEventKind::PolicyUpdate {
                op: 0,
                cycles: 10,
                flushed: 5,
                scoped: false,
                applied: true,
            },
        );
        t.emit_flush(1_000_000, 5, false);
        t.end_update();
        // Post-update windows inherit the latched rebuild cause...
        t.emit(
            2_000_000,
            TraceEventKind::MegaflowChurn {
                megaflows: 1,
                masks: 1,
            },
        );
        // ...while uncaused events do not.
        t.emit_uncaused(
            2_000_000,
            TraceEventKind::Crash {
                acls_lost: 0,
                flows_lost: 0,
                upcalls_lost: 0,
            },
        );
        let (events, dropped) = t.take();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].cause, id);
        assert_eq!(events[1].cause, id);
        assert_eq!(events[2].cause, id, "window inherits rebuild cause");
        assert_eq!(events[3].cause, CauseId::NONE);
        // Sequence numbers order same-tick events.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn policy_update_emission_combines_update_and_flush() {
        let t = Tracer::for_host(TraceConfig::enabled(), 1);
        t.set_now(5_000_000);
        let id = t.begin_update();
        t.emit_policy_update(0, 99, 7, true, true);
        t.end_update();
        let (events, _) = t.take();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0].kind,
            TraceEventKind::PolicyUpdate { flushed: 7, .. }
        ));
        assert!(matches!(events[1].kind, TraceEventKind::CacheFlush { .. }));
        assert!(events.iter().all(|e| e.at_ns == 5_000_000 && e.cause == id));
        // The flush latched the rebuild cause for later windows.
        t.emit(
            6_000_000,
            TraceEventKind::MegaflowChurn {
                megaflows: 0,
                masks: 0,
            },
        );
        assert_eq!(t.take().0[2].cause, id);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let t = Tracer::for_host(
            TraceConfig {
                enabled: true,
                capacity: 4,
            },
            0,
        );
        for i in 0..10u64 {
            t.emit_uncaused(i, TraceEventKind::Reconcile { pushes: i as u32 });
        }
        let (events, dropped) = t.take();
        assert_eq!(dropped, 6);
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].at_ns, 6);
        assert_eq!(events[3].at_ns, 9);
    }
}
