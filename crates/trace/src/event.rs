//! The typed event vocabulary: [`TraceConfig`], [`CauseId`],
//! [`TraceEvent`], and [`TraceEventKind`].

/// Trace layer configuration. `Copy` so it can live inside the sim
/// configs without churn; `Default` is **disabled** — tracing is
/// strictly opt-in and a disabled tracer is a guaranteed no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether any events are recorded at all.
    pub enabled: bool,
    /// Ring capacity **per host**. When a host's ring is full the
    /// oldest event is overwritten and `dropped` is incremented.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            capacity: 65_536,
        }
    }
}

impl TraceConfig {
    /// An enabled config with the default per-host capacity.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            ..Self::default()
        }
    }
}

/// The causality id linking a policy update to everything it triggers.
///
/// A fresh id is allocated when a control-plane update starts applying
/// (`Tracer::begin_update`): `((host + 1) << 32) | update_seq`, which is
/// globally unique, deterministic, and independent of worker count.
/// The [`super::Tracer`] latches the id of the most recent cache flush
/// as the *rebuild cause*; subsequent window aggregates, detections,
/// and defense transitions carry that id — attributing the rebuild
/// storm (and its detection) to the update that flushed the cache.
/// `NONE` (0) marks events with no attributable cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CauseId(pub u64);

impl CauseId {
    /// No attributable cause.
    pub const NONE: CauseId = CauseId(0);

    /// The id for update number `update_seq` on `host`.
    pub fn new(host: u32, update_seq: u32) -> Self {
        CauseId(((host as u64 + 1) << 32) | update_seq as u64)
    }

    /// Whether this is a real cause (not [`CauseId::NONE`]).
    pub fn is_some(&self) -> bool {
        self.0 != 0
    }

    /// The host that issued the causing update (`None` for
    /// [`CauseId::NONE`]).
    pub fn host(&self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            Some((self.0 >> 32) as u32 - 1)
        }
    }

    /// The per-host update sequence number of the causing update.
    pub fn update_seq(&self) -> u32 {
        self.0 as u32
    }
}

/// One trace event: sim-time stamp, emitting host, per-host sequence
/// number (tie-break within a tick), causality id, and the typed
/// payload. Everything is `Copy` — recording an event never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Sim time in nanoseconds (tick boundary), never wall clock.
    pub at_ns: u64,
    /// Emitting host id.
    pub host: u32,
    /// Per-host monotone sequence number; orders same-tick events.
    pub seq: u32,
    /// Causality id ([`CauseId::NONE`] when unattributed).
    pub cause: CauseId,
    /// The typed payload.
    pub kind: TraceEventKind,
}

/// The typed payloads. Window events summarize one executed tick
/// (event-driven runs skip provably-idle ticks, so quiet ticks emit
/// nothing — which is exactly why the skip is trace-safe).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEventKind {
    /// One costed control-plane policy update applied at the switch.
    /// `op` codes the update kind: 0 = ACL install, 1 = ACL removal,
    /// 2 = pod attach.
    PolicyUpdate {
        /// Update kind code (0 install, 1 remove, 2 attach).
        op: u8,
        /// Datapath cycles the update consumed.
        cycles: u64,
        /// Megaflow entries its invalidation discarded.
        flushed: u32,
        /// Whether the invalidation was scoped to the updated
        /// destination rather than a global flush.
        scoped: bool,
        /// Whether the update changed switch state.
        applied: bool,
    },
    /// A cache invalidation that actually flushed state. Carries the
    /// causing update's id; the tracer latches this id as the rebuild
    /// cause for subsequent window aggregates.
    CacheFlush {
        /// Megaflow entries discarded.
        flushed: u32,
        /// Scoped vs. global invalidation.
        scoped: bool,
    },
    /// Fast-path packet-batch summary for one executed tick.
    BatchWindow {
        /// Packets processed.
        packets: u32,
        /// Microflow-cache hits.
        microflow_hits: u32,
        /// Megaflow-cache hits.
        megaflow_hits: u32,
        /// Slow-path upcalls raised.
        upcalls: u32,
        /// Packets denied by policy.
        policy_drops: u32,
        /// Cycles consumed this tick (packets + control).
        cycles: u64,
    },
    /// Upcall-pipeline summary for one executed tick.
    UpcallWindow {
        /// Upcalls accepted onto queues.
        enqueued: u32,
        /// Upcalls tail-dropped at full queues.
        queue_drops: u32,
        /// Upcalls resolved by handlers.
        handled: u32,
        /// Megaflow installs flushed at step ends.
        installs: u32,
    },
    /// Megaflow-cache churn snapshot for one executed tick.
    MegaflowChurn {
        /// Megaflow entries resident after the tick.
        megaflows: u32,
        /// Distinct wildcard masks (subtables) resident.
        masks: u32,
    },
    /// Control-channel delivery summary for one executed tick
    /// (fault-injected channels only; a perfect channel emits nothing).
    ControlChannel {
        /// Updates delivered by the forward channel.
        delivered: u32,
        /// Updates dropped by the forward channel.
        dropped: u32,
        /// Retransmissions sent.
        retries: u32,
        /// Deliveries discarded because the switch was down.
        lost_to_downtime: u32,
        /// Updates actually handed to the switch.
        applied: u32,
    },
    /// One desired-vs-installed reconciliation pass.
    Reconcile {
        /// Updates re-pushed to repair drift.
        pushes: u32,
    },
    /// Defense controller state transition. States code as 0 = Idle,
    /// 1 = Suspect, 2 = Mitigating, 3 = Cooldown.
    DefenseTransition {
        /// State before the transition.
        from: u8,
        /// State after the transition.
        to: u8,
        /// Mitigation/revert actions taken at the transition.
        actions: u32,
    },
    /// One detector firing. `signal` codes the position in
    /// `pi_detect::Signal::ALL` (5 = PolicyChurn).
    Detection {
        /// Signal code (index into `Signal::ALL`).
        signal: u8,
        /// Observed value that fired.
        value: f64,
        /// Threshold it crossed.
        threshold: f64,
    },
    /// A switch crash/restart and what it wiped.
    Crash {
        /// Installed ACLs lost.
        acls_lost: u32,
        /// Cached flow entries discarded.
        flows_lost: u32,
        /// Queued upcalls discarded.
        upcalls_lost: u32,
    },
    /// One fleet `Flush` null-message exchange (engine self-profiling;
    /// recorded in the per-worker engine profile, **not** the canonical
    /// ring, because its shape depends on worker count).
    FlushExchange {
        /// Sending worker.
        from: u32,
        /// Receiving worker.
        to: u32,
        /// The safe-tick bound the message advances.
        safe_tick: u64,
        /// Cross-shard items carried.
        items: u32,
    },
}

impl TraceEventKind {
    /// Stable event-kind name used by both exporters.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::PolicyUpdate { .. } => "policy_update",
            TraceEventKind::CacheFlush { .. } => "cache_flush",
            TraceEventKind::BatchWindow { .. } => "batch_window",
            TraceEventKind::UpcallWindow { .. } => "upcall_window",
            TraceEventKind::MegaflowChurn { .. } => "megaflow_churn",
            TraceEventKind::ControlChannel { .. } => "control_channel",
            TraceEventKind::Reconcile { .. } => "reconcile",
            TraceEventKind::DefenseTransition { .. } => "defense_transition",
            TraceEventKind::Detection { .. } => "detection",
            TraceEventKind::Crash { .. } => "crash",
            TraceEventKind::FlushExchange { .. } => "flush_exchange",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_id_roundtrips_host_and_seq() {
        let id = CauseId::new(7, 42);
        assert!(id.is_some());
        assert_eq!(id.host(), Some(7));
        assert_eq!(id.update_seq(), 42);
        assert_eq!(CauseId::NONE.host(), None);
        assert!(!CauseId::NONE.is_some());
        // Host 0, update 0 must still be distinguishable from NONE.
        assert!(CauseId::new(0, 0).is_some());
    }

    #[test]
    fn default_config_is_disabled() {
        assert!(!TraceConfig::default().enabled);
        assert!(TraceConfig::enabled().enabled);
    }
}
