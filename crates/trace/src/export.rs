//! The two exporters: Chrome trace-event JSON (Perfetto /
//! `chrome://tracing`) and a Prometheus-style text snapshot built on
//! [`pi_metrics::Summary`]. Both render integers wherever possible and
//! fixed-precision floats elsewhere, so identical traces render
//! byte-identical files.

use std::fmt::Write as _;

use pi_metrics::Summary;

use crate::event::{TraceEvent, TraceEventKind};
use crate::report::TraceReport;

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:.6}");
    } else {
        out.push_str("null");
    }
}

/// Renders one event's `args` object (the typed payload plus the
/// causality id, flattened for the Perfetto UI).
fn push_args(out: &mut String, ev: &TraceEvent) {
    let _ = write!(out, "{{\"cause\": {}", ev.cause.0);
    match ev.kind {
        TraceEventKind::PolicyUpdate {
            op,
            cycles,
            flushed,
            scoped,
            applied,
        } => {
            let _ = write!(
                out,
                ", \"op\": {op}, \"cycles\": {cycles}, \"flushed\": {flushed}, \"scoped\": {scoped}, \"applied\": {applied}"
            );
        }
        TraceEventKind::CacheFlush { flushed, scoped } => {
            let _ = write!(out, ", \"flushed\": {flushed}, \"scoped\": {scoped}");
        }
        TraceEventKind::BatchWindow {
            packets,
            microflow_hits,
            megaflow_hits,
            upcalls,
            policy_drops,
            cycles,
        } => {
            let _ = write!(
                out,
                ", \"packets\": {packets}, \"microflow_hits\": {microflow_hits}, \"megaflow_hits\": {megaflow_hits}, \"upcalls\": {upcalls}, \"policy_drops\": {policy_drops}, \"cycles\": {cycles}"
            );
        }
        TraceEventKind::UpcallWindow {
            enqueued,
            queue_drops,
            handled,
            installs,
        } => {
            let _ = write!(
                out,
                ", \"enqueued\": {enqueued}, \"queue_drops\": {queue_drops}, \"handled\": {handled}, \"installs\": {installs}"
            );
        }
        TraceEventKind::MegaflowChurn { megaflows, masks } => {
            let _ = write!(out, ", \"megaflows\": {megaflows}, \"masks\": {masks}");
        }
        TraceEventKind::ControlChannel {
            delivered,
            dropped,
            retries,
            lost_to_downtime,
            applied,
        } => {
            let _ = write!(
                out,
                ", \"delivered\": {delivered}, \"dropped\": {dropped}, \"retries\": {retries}, \"lost_to_downtime\": {lost_to_downtime}, \"applied\": {applied}"
            );
        }
        TraceEventKind::Reconcile { pushes } => {
            let _ = write!(out, ", \"pushes\": {pushes}");
        }
        TraceEventKind::DefenseTransition { from, to, actions } => {
            let _ = write!(
                out,
                ", \"from\": {from}, \"to\": {to}, \"actions\": {actions}"
            );
        }
        TraceEventKind::Detection {
            signal,
            value,
            threshold,
        } => {
            let _ = write!(out, ", \"signal\": {signal}, \"value\": ");
            push_f64(out, value);
            out.push_str(", \"threshold\": ");
            push_f64(out, threshold);
        }
        TraceEventKind::Crash {
            acls_lost,
            flows_lost,
            upcalls_lost,
        } => {
            let _ = write!(
                out,
                ", \"acls_lost\": {acls_lost}, \"flows_lost\": {flows_lost}, \"upcalls_lost\": {upcalls_lost}"
            );
        }
        TraceEventKind::FlushExchange {
            from,
            to,
            safe_tick,
            items,
        } => {
            let _ = write!(
                out,
                ", \"from\": {from}, \"to\": {to}, \"safe_tick\": {safe_tick}, \"items\": {items}"
            );
        }
    }
    out.push('}');
}

/// Renders the Chrome trace-event format: one instant event (`"ph":
/// "i"`, thread scope) per trace event, `ts` in integer microseconds
/// (lossless — events land on millisecond tick boundaries), `pid` =
/// host. Load the file in Perfetto or `chrome://tracing` to see each
/// policy update's cascade as a per-host timeline.
pub fn chrome_trace_json(report: &TraceReport) -> String {
    let mut out = String::with_capacity(128 * report.events.len() + 256);
    out.push_str("{\n\"traceEvents\": [\n");
    for (i, ev) in report.events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {}, \"pid\": {}, \"tid\": 0, \"args\": ",
            ev.kind.name(),
            ev.at_ns / 1_000,
            ev.host
        );
        push_args(&mut out, ev);
        out.push('}');
    }
    let _ = write!(
        out,
        "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {{\"dropped_events\": {}, \"ring_capacity\": {}}}\n}}\n",
        report.dropped, report.capacity
    );
    out
}

fn prom_summary(out: &mut String, name: &str, values: &[f64]) {
    if values.is_empty() {
        return;
    }
    let s = Summary::of(values);
    let _ = writeln!(out, "# TYPE {name} summary");
    for (stat, v) in [
        ("mean", s.mean),
        ("min", s.min),
        ("p50", s.p50),
        ("p99", s.p99),
        ("max", s.max),
    ] {
        let _ = write!(out, "{name}{{stat=\"{stat}\"}} ");
        push_f64(out, v);
        out.push('\n');
    }
    let _ = writeln!(out, "{name}_count {}", s.count);
}

/// Renders a Prometheus-style text snapshot of the trace: per-kind
/// event counts, causal-attribution coverage, and summaries of the
/// window aggregates — the scrape a production vSwitch operator would
/// alert on.
pub fn prometheus_snapshot(report: &TraceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE pi_trace_events_total counter");
    let kinds = [
        "policy_update",
        "cache_flush",
        "batch_window",
        "upcall_window",
        "megaflow_churn",
        "control_channel",
        "reconcile",
        "defense_transition",
        "detection",
        "crash",
        "flush_exchange",
    ];
    for kind in kinds {
        let n = report
            .events
            .iter()
            .filter(|e| e.kind.name() == kind)
            .count();
        let _ = writeln!(out, "pi_trace_events_total{{kind=\"{kind}\"}} {n}");
    }
    let attributed = report.events.iter().filter(|e| e.cause.is_some()).count();
    let _ = writeln!(out, "# TYPE pi_trace_events_attributed counter");
    let _ = writeln!(out, "pi_trace_events_attributed {attributed}");
    let _ = writeln!(out, "# TYPE pi_trace_events_dropped counter");
    let _ = writeln!(out, "pi_trace_events_dropped {}", report.dropped);

    let mut packets = Vec::new();
    let mut upcalls = Vec::new();
    let mut flushed = Vec::new();
    for ev in &report.events {
        match ev.kind {
            TraceEventKind::BatchWindow {
                packets: p,
                upcalls: u,
                ..
            } => {
                packets.push(p as f64);
                upcalls.push(u as f64);
            }
            TraceEventKind::CacheFlush { flushed: f, .. } => flushed.push(f as f64),
            _ => {}
        }
    }
    prom_summary(&mut out, "pi_trace_batch_packets", &packets);
    prom_summary(&mut out, "pi_trace_batch_upcalls", &upcalls);
    prom_summary(&mut out, "pi_trace_flushed_megaflows", &flushed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Tracer;
    use crate::event::TraceConfig;
    use crate::json::validate_json;

    fn sample_report() -> TraceReport {
        let cfg = TraceConfig::enabled();
        let t = Tracer::for_host(cfg, 0);
        t.begin_update();
        t.emit(
            1_000_000,
            TraceEventKind::PolicyUpdate {
                op: 0,
                cycles: 9,
                flushed: 4,
                scoped: false,
                applied: true,
            },
        );
        t.emit_flush(1_000_000, 4, false);
        t.end_update();
        t.emit(
            2_000_000,
            TraceEventKind::BatchWindow {
                packets: 32,
                microflow_hits: 20,
                megaflow_hits: 8,
                upcalls: 4,
                policy_drops: 0,
                cycles: 4_000,
            },
        );
        t.emit(
            2_000_000,
            TraceEventKind::Detection {
                signal: 5,
                value: 12.0,
                threshold: 4.0,
            },
        );
        TraceReport::collect(cfg, &[t])
    }

    #[test]
    fn chrome_export_is_valid_json_with_microsecond_stamps() {
        let json = chrome_trace_json(&sample_report());
        validate_json(&json).expect("chrome export must parse");
        assert!(json.contains("\"ts\": 1000"));
        assert!(json.contains("\"ts\": 2000"));
        assert!(json.contains("\"name\": \"cache_flush\""));
        assert!(json.contains("\"dropped_events\": 0"));
    }

    #[test]
    fn prometheus_snapshot_counts_kinds_and_attribution() {
        let text = prometheus_snapshot(&sample_report());
        assert!(text.contains("pi_trace_events_total{kind=\"policy_update\"} 1"));
        assert!(text.contains("pi_trace_events_total{kind=\"detection\"} 1"));
        assert!(text.contains("pi_trace_events_attributed 4"));
        assert!(text.contains("pi_trace_batch_packets_count 1"));
    }
}
