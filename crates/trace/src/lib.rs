//! # pi-trace — deterministic structured tracing
//!
//! A fixed-capacity, per-shard ring buffer of typed simulation events,
//! stamped with **sim time** (never wall clock) and a **causality id**
//! that links a control-plane policy update to the cache flushes,
//! rebuild upcalls, detections, and mitigations it triggers. The paper's
//! core claim is causal — a few malicious policy updates cascade into
//! dataplane collapse — and this crate turns every scenario run into an
//! inspectable timeline of that cascade.
//!
//! Design constraints, in order:
//!
//! 1. **Guaranteed no-op when disabled.** A disabled [`Tracer`] is a
//!    `None` — every emission site is one branch on an `Option`, no
//!    locks taken, no stats snapshotted, nothing allocated.
//! 2. **Deterministic when enabled.** Events are stamped with sim-time
//!    nanoseconds and a per-host sequence number; the merged
//!    [`TraceReport`] orders them by `(at_ns, host, seq)`, which is a
//!    total order independent of worker count — the fleet's
//!    bit-identical guarantee extends to traces.
//! 3. **Allocation-free steady state.** The ring is preallocated at
//!    [`TraceConfig::capacity`] and overwrites its oldest events when
//!    full (`dropped` counts the overwritten ones); every
//!    [`TraceEvent`] is `Copy`.
//!
//! Two exporters ship with the crate: [`chrome_trace_json`] renders the
//! Chrome trace-event format (loadable in Perfetto / `chrome://tracing`)
//! and [`prometheus_snapshot`] renders a Prometheus-style text snapshot
//! built on [`pi_metrics::Summary`]. [`validate_json`] is a
//! dependency-free JSON validity checker used by CI to prove the
//! Chrome export parses.

pub mod cell;
pub mod event;
pub mod export;
pub mod json;
pub mod report;

pub use cell::{TraceCell, Tracer};
pub use event::{CauseId, TraceConfig, TraceEvent, TraceEventKind};
pub use export::{chrome_trace_json, prometheus_snapshot};
pub use json::validate_json;
pub use report::TraceReport;
