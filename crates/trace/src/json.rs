//! A dependency-free recursive-descent JSON validity checker. CI uses
//! it to prove the Chrome trace export parses; it validates syntax per
//! RFC 8259 (objects, arrays, strings with escapes, numbers, literals)
//! without building a document tree.

/// Validates that `input` is exactly one well-formed JSON value.
/// Returns `Err` with a byte offset and reason on the first violation.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail(pos: usize, what: &str) -> String {
    format!("{what} at byte {pos}")
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        None => Err(fail(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(fail(*pos, &format!("unexpected byte {:#04x}", c))),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if bytes.len() >= *pos + lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(fail(*pos, "invalid literal"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(fail(*pos, "expected object key string"));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(fail(*pos, "expected ':'"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(fail(*pos, "expected ',' or '}'")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(fail(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '"'
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(fail(*pos, "bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(fail(*pos, "bad escape")),
                }
            }
            0x00..=0x1f => return Err(fail(*pos, "raw control char in string")),
            _ => *pos += 1,
        }
    }
    Err(fail(*pos, "unterminated string"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return Err(fail(*pos, "expected digit")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(fail(*pos, "expected fraction digit"));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(fail(*pos, "expected exponent digit"));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e3",
            "\"a\\n\\u00e9\"",
            "[]",
            "{}",
            "[1, {\"a\": [false, null]}, \"x\"]",
            "{\"k\": {\"nested\": [1.0, 2e-2]}}",
        ] {
            validate_json(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\": }",
            "{\"a\" 1}",
            "01",
            "1.",
            "\"unterminated",
            "nul",
            "[1] trailing",
            "{'a': 1}",
        ] {
            assert!(validate_json(doc).is_err(), "should reject: {doc}");
        }
    }
}
