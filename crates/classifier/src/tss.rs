//! Tuple Space Search — the classifier under attack.
//!
//! TSS keeps one hash table ("subtable") per distinct wildcard mask.
//! Lookup masks the packet key with each subtable's mask in turn and
//! probes that subtable's hash; with non-overlapping entries (the
//! megaflow invariant) the first hit is the answer. Hash lookup is O(1),
//! but the subtable walk is **linear in the number of distinct masks** —
//! the algorithmic deficiency the paper exploits (§2: "the TSS algorithm
//! still has to iterate through all hashes assigned to different masks,
//! rendering TSS a costly linear search when there are lots of masks").
//!
//! The implementation is generic over the entry payload `V` so the same
//! engine serves as the megaflow cache store (`V = MegaflowEntry`) and as
//! a general classifier in tests.
//!
//! **Hot-path design** (the allocation-free rebuild): each subtable is a
//! [`FlatTable`] — open addressing, power-of-two capacity, linear
//! probing — keyed by the entry's deterministic flow hash. A lookup
//! extracts the packet's [`KeyWords`] **once** and derives its hash
//! under every subtable's mask with one AND-and-mix per field
//! ([`KeyWords::masked_hash`]); no masked `FlowKey` is materialised and
//! nothing allocates per packet. Callers that already hold the packet's
//! words (the datapath's batch path) use the `*_with` lookup variants to
//! skip re-extraction.

use std::collections::HashMap;

use pi_core::{FlowKey, FlowMask, KeyWords, MaskWords, MaskedKey};

use crate::flat::FlatTable;
use crate::staged::StagedIndex;

/// How the subtable list is ordered for the sequential walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubtableOrder {
    /// Masks are probed in the order they first appeared (OVS default
    /// behaviour absent the priority sorter). This is the configuration
    /// the paper attacks.
    Insertion,
    /// Subtables are periodically re-sorted by descending hit count, the
    /// countermeasure OVS ships as "subtable priority sorting". Victims
    /// with hot flows float toward the front of the walk.
    HitCountDescending {
        /// Re-sort after this many lookups.
        resort_every: u64,
    },
}

/// One flat hash table of same-mask entries.
#[derive(Debug, Clone)]
struct Subtable<V> {
    mask: FlowMask,
    /// The mask's word representation, precomputed so a probe is one
    /// masked-hash fold over the packet's words.
    mask_words: MaskWords,
    entries: FlatTable<V>,
    /// Hits since creation (drives `HitCountDescending`).
    hits: u64,
    /// Optional staged membership index.
    staged: Option<StagedIndex>,
    /// Hash work of one full (non-staged) probe, in stage units: the
    /// number of protocol stages with mask bits (≥ 1). A staged probe
    /// that aborts at stage `k` costs `k` of these units.
    full_probe_cost: usize,
}

impl<V> Subtable<V> {
    fn new(mask: FlowMask, staged_enabled: bool) -> Self {
        let staged_probe = StagedIndex::new(&mask);
        let full_probe_cost = staged_probe.stage_count().max(1);
        Subtable {
            mask,
            mask_words: MaskWords::of(&mask),
            entries: FlatTable::new(),
            hits: 0,
            staged: staged_enabled.then_some(staged_probe),
            full_probe_cost,
        }
    }

    /// A canonical entry key's hash: the masked key is pre-masked, so
    /// its full hash equals its masked hash under this subtable's mask —
    /// the invariant that lets raw packets probe with
    /// [`KeyWords::masked_hash`].
    #[inline]
    fn entry_hash(key: &FlowKey) -> u64 {
        KeyWords::of(key).full_hash()
    }
}

/// Counters accumulated across lookups.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TssStats {
    /// Total lookups performed (hit or miss).
    pub lookups: u64,
    /// Total subtables probed across all lookups.
    pub subtables_probed: u64,
    /// Total stage checks performed (≥ probes when staged lookup is on;
    /// equals probes otherwise).
    pub stage_checks: u64,
    /// Lookups that found an entry.
    pub hits: u64,
}

impl TssStats {
    /// Mean subtables probed per lookup.
    pub fn avg_probes(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.subtables_probed as f64 / self.lookups as f64
        }
    }
}

/// The outcome of a single lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupOutcome<T> {
    /// The first matching entry's payload, if any.
    pub value: Option<T>,
    /// How many subtables were visited (each visit costs a hash of the
    /// packet key under that subtable's mask).
    pub probes: usize,
    /// Stage checks performed (= probes without staged lookup).
    pub stage_checks: usize,
}

/// A Tuple Space Search classifier / cache store.
#[derive(Debug, Clone)]
pub struct TupleSpaceSearch<V> {
    subtables: Vec<Subtable<V>>,
    /// Probe order: indices into `subtables`.
    order: Vec<usize>,
    /// mask → index into `subtables`.
    index: HashMap<FlowMask, usize>,
    entry_count: usize,
    ordering: SubtableOrder,
    staged_enabled: bool,
    stats: TssStats,
    lookups_since_resort: u64,
}

impl<V> Default for TupleSpaceSearch<V> {
    fn default() -> Self {
        Self::new(SubtableOrder::Insertion)
    }
}

impl<V> TupleSpaceSearch<V> {
    /// An empty classifier with the given subtable ordering strategy.
    pub fn new(ordering: SubtableOrder) -> Self {
        TupleSpaceSearch {
            subtables: Vec::new(),
            order: Vec::new(),
            index: HashMap::new(),
            entry_count: 0,
            ordering,
            staged_enabled: false,
            stats: TssStats::default(),
            lookups_since_resort: 0,
        }
    }

    /// Enables staged lookup for subtables created *after* this call
    /// (intended to be set at construction time).
    pub fn with_staged_lookup(mut self) -> Self {
        self.staged_enabled = true;
        self
    }

    /// Whether staged lookup is currently enabled.
    pub fn staged_lookup(&self) -> bool {
        self.staged_enabled
    }

    /// Toggles staged lookup at runtime. Enabling retrofits a
    /// [`StagedIndex`] onto every existing subtable (one pass over its
    /// entries), so lookups behave exactly as if the classifier had been
    /// built staged from the start; disabling drops the indexes. A
    /// no-op when the flag already matches.
    pub fn set_staged_lookup(&mut self, enabled: bool) {
        if self.staged_enabled == enabled {
            return;
        }
        self.staged_enabled = enabled;
        for st in &mut self.subtables {
            st.staged = enabled.then(|| {
                let mut staged = StagedIndex::new(&st.mask);
                for (key, _) in st.entries.iter() {
                    staged.insert(key);
                }
                staged
            });
        }
    }

    /// Total entries across all subtables.
    pub fn len(&self) -> usize {
        self.entry_count
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// Number of subtables — the paper's "#masks", the attack's target.
    pub fn subtable_count(&self) -> usize {
        self.subtables.len()
    }

    /// The distinct masks currently present, in probe order.
    pub fn masks(&self) -> Vec<FlowMask> {
        self.order.iter().map(|&i| self.subtables[i].mask).collect()
    }

    /// Accumulated lookup statistics.
    pub fn stats(&self) -> TssStats {
        self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = TssStats::default();
    }

    /// Inserts an entry; returns the previous payload if the masked key
    /// was already present. Creates the subtable on first use of a mask.
    pub fn insert(&mut self, mk: MaskedKey, value: V) -> Option<V> {
        let idx = match self.index.get(mk.mask()) {
            Some(&i) => i,
            None => {
                let i = self.subtables.len();
                self.subtables
                    .push(Subtable::new(*mk.mask(), self.staged_enabled));
                self.order.push(i);
                self.index.insert(*mk.mask(), i);
                i
            }
        };
        let st = &mut self.subtables[idx];
        let prev = st
            .entries
            .insert(Subtable::<V>::entry_hash(mk.key()), *mk.key(), value);
        if prev.is_none() {
            self.entry_count += 1;
            if let Some(staged) = &mut st.staged {
                staged.insert(mk.key());
            }
        }
        prev
    }

    /// Fetches an entry by exact masked key.
    pub fn get(&self, mk: &MaskedKey) -> Option<&V> {
        let &i = self.index.get(mk.mask())?;
        self.subtables[i]
            .entries
            .get(Subtable::<V>::entry_hash(mk.key()), mk.key())
    }

    /// Mutable fetch by exact masked key.
    pub fn get_mut(&mut self, mk: &MaskedKey) -> Option<&mut V> {
        let &i = self.index.get(mk.mask())?;
        self.subtables[i]
            .entries
            .get_mut(Subtable::<V>::entry_hash(mk.key()), mk.key())
    }

    /// Removes an entry by masked key; drops the subtable if it empties.
    pub fn remove(&mut self, mk: &MaskedKey) -> Option<V> {
        let &idx = self.index.get(mk.mask())?;
        let st = &mut self.subtables[idx];
        let removed = st
            .entries
            .remove(Subtable::<V>::entry_hash(mk.key()), mk.key());
        if removed.is_some() {
            self.entry_count -= 1;
            if let Some(staged) = &mut st.staged {
                staged.remove(mk.key());
            }
            if st.entries.is_empty() {
                self.remove_subtable(idx);
            }
        }
        removed
    }

    fn remove_subtable(&mut self, idx: usize) {
        let last = self.subtables.len() - 1;
        self.index.remove(&self.subtables[idx].mask);
        self.subtables.swap_remove(idx);
        self.order.retain(|&i| i != idx);
        if idx != last {
            // The subtable formerly at `last` now lives at `idx`.
            self.index.insert(self.subtables[idx].mask, idx);
            for o in self.order.iter_mut() {
                if *o == last {
                    *o = idx;
                }
            }
        }
    }

    /// Sequential-walk lookup **without** touching hit counters or stats
    /// — the pure variant used by tests and diagnostics.
    pub fn peek(&self, packet: &FlowKey) -> LookupOutcome<&V> {
        self.peek_with(packet, &KeyWords::of(packet))
    }

    /// [`TupleSpaceSearch::peek`] with the packet's words already
    /// extracted (batch callers hash once per packet, not per level).
    pub fn peek_with(&self, packet: &FlowKey, words: &KeyWords) -> LookupOutcome<&V> {
        let mut probes = 0;
        let mut stage_checks = 0;
        for &i in &self.order {
            let st = &self.subtables[i];
            probes += 1;
            if let Some(staged) = &st.staged {
                let (may, stages) = staged.probe_with(packet, words);
                stage_checks += stages;
                if !may {
                    continue;
                }
            } else {
                stage_checks += st.full_probe_cost;
            }
            let hash = words.masked_hash(&st.mask_words);
            if let Some(v) = st.entries.get_by_hash(hash, |k| st.mask.key_eq(k, packet)) {
                return LookupOutcome {
                    value: Some(v),
                    probes,
                    stage_checks,
                };
            }
        }
        LookupOutcome {
            value: None,
            probes,
            stage_checks,
        }
    }

    /// Sequential-walk lookup, updating hit counters and statistics and
    /// periodically re-sorting subtables when hit-count ordering is
    /// enabled. Returns a *clone-free* outcome by index; use
    /// [`TupleSpaceSearch::lookup`] for the common case.
    pub fn lookup_mut(&mut self, packet: &FlowKey) -> LookupOutcome<&mut V> {
        self.lookup_mut_with(packet, &KeyWords::of(packet))
    }

    /// [`TupleSpaceSearch::lookup_mut`] with the packet's words already
    /// extracted — the datapath's hot path.
    pub fn lookup_mut_with(&mut self, packet: &FlowKey, words: &KeyWords) -> LookupOutcome<&mut V> {
        self.maybe_resort();
        self.stats.lookups += 1;
        self.lookups_since_resort += 1;

        let mut probes = 0;
        let mut stage_checks = 0;
        let mut found: Option<(usize, u64)> = None;
        for &i in &self.order {
            let st = &mut self.subtables[i];
            probes += 1;
            if let Some(staged) = &st.staged {
                let (may, stages) = staged.probe_with(packet, words);
                stage_checks += stages;
                if !may {
                    continue;
                }
            } else {
                stage_checks += st.full_probe_cost;
            }
            let hash = words.masked_hash(&st.mask_words);
            if st
                .entries
                .get_by_hash(hash, |k| st.mask.key_eq(k, packet))
                .is_some()
            {
                st.hits += 1;
                found = Some((i, hash));
                break;
            }
        }

        self.stats.subtables_probed += probes as u64;
        self.stats.stage_checks += stage_checks as u64;
        match found {
            Some((i, hash)) => {
                self.stats.hits += 1;
                let st = &mut self.subtables[i];
                let mask = st.mask;
                LookupOutcome {
                    value: st.entries.get_mut_by_hash(hash, |k| mask.key_eq(k, packet)),
                    probes,
                    stage_checks,
                }
            }
            None => LookupOutcome {
                value: None,
                probes,
                stage_checks,
            },
        }
    }

    /// Like [`TupleSpaceSearch::lookup_mut`] but returning a shared
    /// reference.
    pub fn lookup(&mut self, packet: &FlowKey) -> LookupOutcome<&V> {
        let out = self.lookup_mut(packet);
        LookupOutcome {
            value: out.value.map(|v| &*v),
            probes: out.probes,
            stage_checks: out.stage_checks,
        }
    }

    fn maybe_resort(&mut self) {
        if let SubtableOrder::HitCountDescending { resort_every } = self.ordering {
            if self.lookups_since_resort >= resort_every {
                self.lookups_since_resort = 0;
                let subtables = &self.subtables;
                self.order
                    .sort_by_key(|&i| std::cmp::Reverse(subtables[i].hits));
            }
        }
    }

    /// Scans **all** subtables and returns the best match according to
    /// `rank` (highest wins) — the priority-aware classifier mode used
    /// when entries may overlap.
    pub fn lookup_best_by<K: Ord>(
        &self,
        packet: &FlowKey,
        mut rank: impl FnMut(&V) -> K,
    ) -> LookupOutcome<&V> {
        let words = KeyWords::of(packet);
        let mut probes = 0;
        let mut best: Option<(&V, K)> = None;
        for &i in &self.order {
            let st = &self.subtables[i];
            probes += 1;
            let hash = words.masked_hash(&st.mask_words);
            if let Some(v) = st.entries.get_by_hash(hash, |k| st.mask.key_eq(k, packet)) {
                let k = rank(v);
                if best.as_ref().map(|(_, bk)| k > *bk).unwrap_or(true) {
                    best = Some((v, k));
                }
            }
        }
        LookupOutcome {
            value: best.map(|(v, _)| v),
            probes,
            stage_checks: probes,
        }
    }

    /// Keeps only the entries for which `keep` returns true (revalidator
    /// sweeps); empty subtables are dropped.
    pub fn retain(&mut self, mut keep: impl FnMut(&MaskedKey, &mut V) -> bool) {
        let mut doomed_subtables = Vec::new();
        for (idx, st) in self.subtables.iter_mut().enumerate() {
            let mask = st.mask;
            let staged = &mut st.staged;
            let before = st.entries.len();
            st.entries.retain(|k, v| {
                let mk = MaskedKey::new(*k, mask);
                let kept = keep(&mk, v);
                if !kept {
                    if let Some(s) = staged {
                        s.remove(k);
                    }
                }
                kept
            });
            self.entry_count -= before - st.entries.len();
            if st.entries.is_empty() {
                doomed_subtables.push(idx);
            }
        }
        // Remove from the back so earlier indices stay valid.
        for idx in doomed_subtables.into_iter().rev() {
            self.remove_subtable(idx);
        }
    }

    /// Iterates `(masked key, payload)` over every entry (subtable order,
    /// then arbitrary hash order within a subtable).
    pub fn iter(&self) -> impl Iterator<Item = (MaskedKey, &V)> {
        self.subtables.iter().flat_map(|st| {
            let mask = st.mask;
            st.entries
                .iter()
                .map(move |(k, v)| (MaskedKey::new(*k, mask), v))
        })
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.subtables.clear();
        self.order.clear();
        self.index.clear();
        self.entry_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::Field;

    fn prefix_mk(ip: [u8; 4], len: u8) -> MaskedKey {
        MaskedKey::new(
            FlowKey::tcp(ip, [0, 0, 0, 0], 0, 0),
            pi_core::FlowMask::default().with_prefix(Field::IpSrc, len),
        )
    }

    #[test]
    fn insert_lookup_hit() {
        let mut tss = TupleSpaceSearch::default();
        tss.insert(prefix_mk([10, 0, 0, 0], 8), "ten");
        tss.insert(prefix_mk([11, 0, 0, 0], 16), "eleven");
        let out = tss.lookup(&FlowKey::tcp([10, 5, 5, 5], [1, 1, 1, 1], 3, 4));
        assert_eq!(out.value, Some(&"ten"));
        assert_eq!(tss.subtable_count(), 2);
        assert_eq!(tss.len(), 2);
    }

    #[test]
    fn same_mask_shares_subtable() {
        let mut tss = TupleSpaceSearch::default();
        for b in 0u8..50 {
            tss.insert(prefix_mk([b, 0, 0, 0], 8), b);
        }
        assert_eq!(tss.subtable_count(), 1);
        assert_eq!(tss.len(), 50);
        // One subtable ⇒ one probe regardless of entry count.
        let out = tss.lookup(&FlowKey::tcp([30, 1, 1, 1], [0, 0, 0, 0], 0, 0));
        assert_eq!(out.value, Some(&30));
        assert_eq!(out.probes, 1);
    }

    #[test]
    fn probe_count_grows_with_masks_on_miss() {
        // The attack's mechanism in miniature: distinct masks force a
        // linear walk.
        let mut tss = TupleSpaceSearch::default();
        for len in 1..=32u8 {
            tss.insert(prefix_mk([10, 0, 0, 0], len), len);
        }
        assert_eq!(tss.subtable_count(), 32);
        let miss = tss.lookup(&FlowKey::tcp([128, 0, 0, 1], [0, 0, 0, 0], 0, 0));
        assert_eq!(miss.value, None);
        assert_eq!(miss.probes, 32, "a miss visits every subtable");
    }

    #[test]
    fn first_match_in_order_wins() {
        let mut tss = TupleSpaceSearch::default();
        tss.insert(prefix_mk([10, 0, 0, 0], 8), "eight");
        tss.insert(prefix_mk([10, 0, 0, 0], 16), "sixteen");
        // Both match 10.0.x.x; insertion order probes /8 first.
        let out = tss.lookup(&FlowKey::tcp([10, 0, 7, 7], [0, 0, 0, 0], 0, 0));
        assert_eq!(out.value, Some(&"eight"));
        assert_eq!(out.probes, 1);
    }

    #[test]
    fn replace_returns_previous() {
        let mut tss = TupleSpaceSearch::default();
        assert_eq!(tss.insert(prefix_mk([10, 0, 0, 0], 8), 1), None);
        assert_eq!(tss.insert(prefix_mk([10, 0, 0, 0], 8), 2), Some(1));
        assert_eq!(tss.len(), 1);
    }

    #[test]
    fn remove_drops_empty_subtable_and_reindexes() {
        let mut tss = TupleSpaceSearch::default();
        let a = prefix_mk([10, 0, 0, 0], 8);
        let b = prefix_mk([10, 1, 0, 0], 16);
        let c = prefix_mk([10, 1, 1, 0], 24);
        tss.insert(a, 'a');
        tss.insert(b, 'b');
        tss.insert(c, 'c');
        assert_eq!(tss.subtable_count(), 3);
        assert_eq!(tss.remove(&a), Some('a'));
        assert_eq!(tss.subtable_count(), 2);
        // The swap_remove moved subtable c; lookups must still work.
        let out = tss.lookup(&FlowKey::tcp([10, 1, 1, 5], [0, 0, 0, 0], 0, 0));
        assert_eq!(out.value, Some(&'b')); // /16 matches 10.1.x.x
        let out = tss.peek(&FlowKey::tcp([10, 2, 0, 1], [0, 0, 0, 0], 0, 0));
        assert_eq!(out.value, None);
        assert_eq!(tss.remove(&b), Some('b'));
        assert_eq!(tss.remove(&c), Some('c'));
        assert_eq!(tss.subtable_count(), 0);
        assert!(tss.is_empty());
        assert_eq!(tss.remove(&a), None);
    }

    #[test]
    fn get_and_get_mut() {
        let mut tss = TupleSpaceSearch::default();
        let mk = prefix_mk([10, 0, 0, 0], 8);
        tss.insert(mk, 5);
        assert_eq!(tss.get(&mk), Some(&5));
        *tss.get_mut(&mk).unwrap() += 1;
        assert_eq!(tss.get(&mk), Some(&6));
        assert_eq!(tss.get(&prefix_mk([11, 0, 0, 0], 8)), None);
    }

    #[test]
    fn stats_accumulate() {
        let mut tss = TupleSpaceSearch::default();
        tss.insert(prefix_mk([10, 0, 0, 0], 8), ());
        tss.insert(prefix_mk([11, 0, 0, 0], 16), ());
        let hit_key = FlowKey::tcp([10, 0, 0, 1], [0, 0, 0, 0], 0, 0);
        let miss_key = FlowKey::tcp([200, 0, 0, 1], [0, 0, 0, 0], 0, 0);
        tss.lookup(&hit_key);
        tss.lookup(&miss_key);
        let s = tss.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.subtables_probed, 1 + 2);
        assert!(s.avg_probes() > 1.0);
        tss.reset_stats();
        assert_eq!(tss.stats(), TssStats::default());
    }

    #[test]
    fn peek_does_not_touch_stats() {
        let mut tss = TupleSpaceSearch::default();
        tss.insert(prefix_mk([10, 0, 0, 0], 8), ());
        tss.peek(&FlowKey::tcp([10, 0, 0, 1], [0, 0, 0, 0], 0, 0));
        assert_eq!(tss.stats().lookups, 0);
    }

    #[test]
    fn hit_count_ordering_floats_hot_subtable_forward() {
        let mut tss = TupleSpaceSearch::new(SubtableOrder::HitCountDescending { resort_every: 10 });
        // 20 cold masks inserted first…
        for len in 1..=20u8 {
            tss.insert(prefix_mk([10, 0, 0, 0], len), len);
        }
        // …then a hot /32 entry probed last in insertion order.
        let hot_key = FlowKey::tcp([200, 9, 9, 9], [0, 0, 0, 0], 0, 0);
        tss.insert(prefix_mk([200, 9, 9, 9], 32), 99);
        let cold_probes = tss.lookup(&hot_key).probes;
        assert_eq!(cold_probes, 21);
        // Hammer the hot entry past the resort threshold.
        for _ in 0..30 {
            tss.lookup(&hot_key);
        }
        let warm_probes = tss.lookup(&hot_key).probes;
        assert_eq!(warm_probes, 1, "hot subtable must be probed first");
    }

    #[test]
    fn insertion_order_never_resorts() {
        let mut tss = TupleSpaceSearch::default();
        for len in 1..=5u8 {
            tss.insert(prefix_mk([10, 0, 0, 0], len), len);
        }
        let key = FlowKey::tcp([10, 0, 0, 1], [0, 0, 0, 0], 0, 0);
        for _ in 0..100 {
            tss.lookup(&key);
        }
        // /1 still probed first (10.0.0.1 matches it: first bit 0).
        assert_eq!(tss.lookup(&key).probes, 1);
        assert_eq!(tss.lookup(&key).value, Some(&1));
    }

    #[test]
    fn lookup_best_by_scans_everything() {
        let mut tss = TupleSpaceSearch::default();
        tss.insert(prefix_mk([10, 0, 0, 0], 8), 1u32); // low rank
        tss.insert(prefix_mk([10, 0, 0, 0], 16), 7u32); // high rank
        let key = FlowKey::tcp([10, 0, 3, 3], [0, 0, 0, 0], 0, 0);
        let out = tss.lookup_best_by(&key, |v| *v);
        assert_eq!(out.value, Some(&7));
        assert_eq!(out.probes, 2, "best-match mode cannot early-exit");
    }

    #[test]
    fn retain_sweeps_and_drops_subtables() {
        let mut tss = TupleSpaceSearch::default();
        for len in 1..=8u8 {
            tss.insert(prefix_mk([10, 0, 0, 0], len), len);
        }
        tss.retain(|_, v| *v % 2 == 0);
        assert_eq!(tss.len(), 4);
        assert_eq!(tss.subtable_count(), 4);
        let masks = tss.masks();
        assert!(masks
            .iter()
            .all(|m| m.field(Field::IpSrc).count_ones() % 2 == 0));
    }

    #[test]
    fn iter_visits_all_entries() {
        let mut tss = TupleSpaceSearch::default();
        tss.insert(prefix_mk([10, 0, 0, 0], 8), 1);
        tss.insert(prefix_mk([11, 0, 0, 0], 8), 2);
        tss.insert(prefix_mk([12, 0, 0, 0], 16), 3);
        let mut values: Vec<i32> = tss.iter().map(|(_, v)| *v).collect();
        values.sort_unstable();
        assert_eq!(values, vec![1, 2, 3]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut tss = TupleSpaceSearch::default();
        tss.insert(prefix_mk([10, 0, 0, 0], 8), ());
        tss.clear();
        assert!(tss.is_empty());
        assert_eq!(tss.subtable_count(), 0);
        assert_eq!(tss.peek(&FlowKey::default()).probes, 0);
    }

    #[test]
    fn staged_lookup_reduces_stage_checks_on_metadata_mismatch() {
        let mut tss = TupleSpaceSearch::default().with_staged_lookup();
        // Entries pinned to in_port 1, matching ip+port too.
        for len in 1..=16u8 {
            let mk = MaskedKey::new(
                FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 80).with(Field::InPort, 1),
                pi_core::FlowMask::default()
                    .with_exact(Field::InPort)
                    .with_prefix(Field::IpSrc, len)
                    .with_exact(Field::TpDst),
            );
            tss.insert(mk, len);
        }
        // A packet from a different port fails every subtable at stage 1
        // of 3 — probes stay 16, but stage checks are 16, not 48.
        let mut foreign = FlowKey::tcp([10, 0, 0, 1], [0, 0, 0, 0], 0, 80);
        foreign.in_port = 2;
        let out = tss.lookup(&foreign);
        assert_eq!(out.value, None);
        assert_eq!(out.probes, 16);
        assert_eq!(out.stage_checks, 16, "1 stage unit per aborted probe");
        // Without staged lookup the same walk hashes each subtable's full
        // 3-stage mask: 3 units per probe.
        let mut plain = TupleSpaceSearch::default();
        for len in 1..=16u8 {
            let mk = MaskedKey::new(
                FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 80).with(Field::InPort, 1),
                pi_core::FlowMask::default()
                    .with_exact(Field::InPort)
                    .with_prefix(Field::IpSrc, len)
                    .with_exact(Field::TpDst),
            );
            plain.insert(mk, len);
        }
        let out_plain = plain.lookup(&foreign);
        assert_eq!(out_plain.probes, 16);
        assert_eq!(out_plain.stage_checks, 48, "full hash work per probe");
        // When the mismatch is only at the last stage, staged lookup
        // saves nothing: same-port wrong-dst-port packet.
        let same_port_wrong_dst =
            FlowKey::tcp([10, 0, 0, 1], [0, 0, 0, 0], 0, 81).with(Field::InPort, 1);
        let staged_out = tss.lookup(&same_port_wrong_dst);
        let plain_out = plain.lookup(&same_port_wrong_dst);
        assert_eq!(staged_out.value, None);
        assert_eq!(plain_out.value, None);
        assert_eq!(staged_out.stage_checks, 48);
        assert_eq!(plain_out.stage_checks, 48);
    }

    #[test]
    fn set_staged_lookup_retrofits_existing_subtables() {
        // Same population as the mismatch test, but staged lookup is
        // flipped on *after* the entries exist: the retrofit must make
        // the classifier behave exactly like a natively staged one.
        let build = || {
            let mut tss = TupleSpaceSearch::default();
            for len in 1..=16u8 {
                let mk = MaskedKey::new(
                    FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 80).with(Field::InPort, 1),
                    pi_core::FlowMask::default()
                        .with_exact(Field::InPort)
                        .with_prefix(Field::IpSrc, len)
                        .with_exact(Field::TpDst),
                );
                tss.insert(mk, len);
            }
            tss
        };
        let mut retrofitted = build();
        assert!(!retrofitted.staged_lookup());
        retrofitted.set_staged_lookup(true);
        assert!(retrofitted.staged_lookup());
        let native = build();
        // Rebuild natively staged for comparison.
        let mut staged_native = TupleSpaceSearch::default().with_staged_lookup();
        for (mk, v) in native.iter() {
            staged_native.insert(mk, *v);
        }
        let mut foreign = FlowKey::tcp([10, 0, 0, 1], [0, 0, 0, 0], 0, 80);
        foreign.in_port = 2;
        let a = retrofitted.lookup(&foreign);
        let b = staged_native.lookup(&foreign);
        assert_eq!(a.value, b.value);
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.stage_checks, b.stage_checks);
        assert_eq!(a.stage_checks, 16, "staged abort at stage 1");
        // Hits are still found, and toggling back off restores full
        // hash work.
        let member = FlowKey::tcp([10, 0, 0, 1], [0, 0, 0, 0], 0, 80).with(Field::InPort, 1);
        assert!(retrofitted.lookup(&member).value.is_some());
        retrofitted.set_staged_lookup(false);
        let off = retrofitted.lookup(&foreign);
        assert_eq!(off.stage_checks, 48, "full hash work once disabled");
    }

    #[test]
    fn staged_lookup_hits_still_found() {
        let mut tss = TupleSpaceSearch::default().with_staged_lookup();
        let mk = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 1], [0, 0, 0, 0], 5, 80).with(Field::InPort, 1),
            pi_core::FlowMask::default()
                .with_exact(Field::InPort)
                .with_exact(Field::IpSrc)
                .with_exact(Field::TpDst),
        );
        tss.insert(mk, "hit");
        let pkt = FlowKey::tcp([10, 0, 0, 1], [9, 9, 9, 9], 1234, 80).with(Field::InPort, 1);
        assert_eq!(tss.lookup(&pkt).value, Some(&"hit"));
        tss.remove(&mk);
        assert_eq!(tss.lookup(&pkt).value, None);
    }
}
