//! Packet-processing actions.

use std::fmt;

/// What to do with a matching packet.
///
/// ACL compilation only produces [`Action::Allow`] and [`Action::Deny`];
/// the forwarding layers use [`Action::Output`]. `Controller` models an
/// explicit punt to the management plane (not used by the attack, present
/// for completeness of the pipeline model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Permit the packet (continue through the pipeline).
    Allow,
    /// Drop the packet per policy.
    Deny,
    /// Forward out of the given port.
    Output(u32),
    /// Punt to the controller / management plane.
    Controller,
}

impl Action {
    /// True for actions that let the packet continue (Allow/Output).
    pub fn permits(&self) -> bool {
        matches!(self, Action::Allow | Action::Output(_))
    }

    /// True for the policy-drop action.
    pub fn denies(&self) -> bool {
        matches!(self, Action::Deny)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Allow => f.write_str("allow"),
            Action::Deny => f.write_str("deny"),
            Action::Output(p) => write!(f, "output:{p}"),
            Action::Controller => f.write_str("controller"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permit_and_deny_predicates() {
        assert!(Action::Allow.permits());
        assert!(Action::Output(3).permits());
        assert!(!Action::Deny.permits());
        assert!(!Action::Controller.permits());
        assert!(Action::Deny.denies());
        assert!(!Action::Allow.denies());
    }

    #[test]
    fn display_matches_paper_vocabulary() {
        assert_eq!(Action::Allow.to_string(), "allow");
        assert_eq!(Action::Deny.to_string(), "deny");
        assert_eq!(Action::Output(7).to_string(), "output:7");
    }
}
