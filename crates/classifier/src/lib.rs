//! # pi-classifier — packet classification engines
//!
//! Everything between "a set of wildcard rules" and "which rule does this
//! packet hit":
//!
//! * [`FlowTable`] — an ordered set of overlapping wildcard [`Rule`]s with
//!   OVS semantics (highest priority wins; among equals, the rule added
//!   first — the tie-break the paper relies on in §2).
//! * [`LinearClassifier`] — the reference slow-path lookup: scan every
//!   rule. Always correct, O(n), used as ground truth everywhere.
//! * [`TupleSpaceSearch`] — the fast-path structure under attack: one
//!   hash table ("subtable") per distinct mask, probed **sequentially**.
//!   Lookup cost is measured in subtables probed, which is exactly the
//!   quantity the policy-injection attack inflates.
//! * [`PrefixTrie`] — per-field binary tries that compute the minimal
//!   number of bits the slow path must un-wildcard to preserve
//!   correctness; the mechanism behind Fig. 2b's decomposition.
//! * [`StagedIndex`] — OVS's staged-lookup optimisation (metadata → L2 →
//!   L3 → L4) modelled for the mitigation ablation.
//! * [`FlatTable`] — the flat open-addressing store behind subtables and
//!   stage sets: keyed by precomputed deterministic flow hashes
//!   ([`pi_core::KeyWords`]), linear probing, tombstone-free removal.

pub mod action;
pub mod flat;
pub mod linear;
pub mod rule;
pub mod staged;
pub mod table;
pub mod trie;
pub mod tss;

pub use action::Action;
pub use flat::FlatTable;
pub use linear::LinearClassifier;
pub use rule::{Rule, RuleId};
pub use staged::StagedIndex;
pub use table::FlowTable;
pub use trie::PrefixTrie;
pub use tss::{LookupOutcome, SubtableOrder, TssStats, TupleSpaceSearch};
