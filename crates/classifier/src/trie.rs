//! Per-field binary prefix tries.
//!
//! Open vSwitch consults a trie of the prefixes appearing in the flow
//! table to decide **how many bits of a field the megaflow entry must
//! match** to stay faithful to the table. This is the engine behind the
//! paper's Fig. 2b: proving that a packet does *not* fall under the
//! `00001010/8` allow rule requires only the bits up to and including the
//! first position where the packet diverges from the stored prefix —
//! hence the complement of one 8-bit value decomposes into 8 masks of
//! lengths 1..=8.
//!
//! The trie is deliberately uncompressed (fields are ≤ 48 bits; paths are
//! short) and insert-only: the slow path rebuilds tries from a table
//! snapshot when policies change, which matches how rarely real flow
//! tables mutate compared to packet arrivals.

use pi_core::Field;

/// One node: two children and a "a stored prefix ends here" marker.
#[derive(Debug, Clone, Default)]
struct Node {
    children: [Option<u32>; 2],
    is_end: bool,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.children[0].is_none() && self.children[1].is_none()
    }
}

/// A binary trie over the MSB-first bit strings of one field's prefixes.
#[derive(Debug, Clone)]
pub struct PrefixTrie {
    field: Field,
    nodes: Vec<Node>,
    count: usize,
}

impl PrefixTrie {
    /// An empty trie for `field`.
    pub fn new(field: Field) -> Self {
        PrefixTrie {
            field,
            nodes: vec![Node::default()], // root
            count: 0,
        }
    }

    /// The field this trie indexes.
    pub fn field(&self) -> Field {
        self.field
    }

    /// Number of distinct stored prefixes.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Inserts the prefix formed by the `len` most significant bits of
    /// `value`. Idempotent for duplicates.
    ///
    /// # Panics
    /// Panics if `len` is 0 or exceeds the field width (a rule whose mask
    /// is zero on this field contributes no prefix and must not be
    /// inserted).
    pub fn insert(&mut self, value: u64, len: u8) {
        assert!(len >= 1, "zero-length prefixes are not stored");
        assert!(len <= self.field.width(), "prefix longer than field");
        let mut node = 0usize;
        for d in 0..len {
            let bit = self.field.bit_msb(value, d) as usize;
            node = match self.nodes[node].children[bit] {
                Some(c) => c as usize,
                None => {
                    let idx = self.nodes.len() as u32;
                    self.nodes.push(Node::default());
                    self.nodes[node].children[bit] = Some(idx);
                    idx as usize
                }
            };
        }
        if !self.nodes[node].is_end {
            self.nodes[node].is_end = true;
            self.count += 1;
        }
    }

    /// True if exactly this prefix is stored.
    pub fn contains(&self, value: u64, len: u8) -> bool {
        let mut node = 0usize;
        for d in 0..len {
            let bit = self.field.bit_msb(value, d) as usize;
            match self.nodes[node].children[bit] {
                Some(c) => node = c as usize,
                None => return false,
            }
        }
        self.nodes[node].is_end
    }

    /// Length of the longest stored prefix that `value` falls under.
    pub fn longest_match(&self, value: u64) -> Option<u8> {
        let mut node = 0usize;
        let mut best = None;
        for d in 0..self.field.width() {
            if self.nodes[node].is_end {
                best = Some(d);
            }
            let bit = self.field.bit_msb(value, d) as usize;
            match self.nodes[node].children[bit] {
                Some(c) => node = c as usize,
                None => return best,
            }
        }
        if self.nodes[node].is_end {
            best = Some(self.field.width());
        }
        best
    }

    /// The minimal number of most-significant bits of `value` a cache
    /// entry must match so that *which stored prefixes `value` falls
    /// under* is fully determined — OVS's `trie_lookup` un-wildcarding
    /// bound, the quantity behind Fig. 2b.
    ///
    /// * Returns 0 for an empty trie (no rule constrains the field).
    /// * If the walk diverges from every stored prefix at depth `d`
    ///   (0-based) while longer prefixes continue on a sibling branch,
    ///   `d + 1` bits are needed: bits 0..=d prove the mismatch.
    /// * If the walk ends at a node with no deeper prefixes, the length
    ///   of the longest matched prefix suffices.
    pub fn unwildcard_bits(&self, value: u64) -> u8 {
        if self.is_empty() {
            return 0;
        }
        let mut node = 0usize;
        let mut longest = 0u8;
        for d in 0..self.field.width() {
            if self.nodes[node].is_end {
                longest = d;
            }
            if self.nodes[node].is_leaf() {
                // Nothing deeper anywhere below: the longest matched
                // prefix is the only constraint.
                return longest;
            }
            let bit = self.field.bit_msb(value, d) as usize;
            match self.nodes[node].children[bit] {
                Some(c) => node = c as usize,
                // Deeper prefixes exist only on the sibling branch; bit d
                // proves the packet diverges from all of them.
                None => return d + 1,
            }
        }
        // Followed stored prefixes through the full field width.
        if self.nodes[node].is_end {
            longest = self.field.width();
        }
        longest
    }

    /// Removes every prefix.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node::default());
        self.count = 0;
    }

    /// Every value [`PrefixTrie::unwildcard_bits`] can return for some
    /// input — i.e. the set of megaflow prefix lengths this field can
    /// contribute. The attack's mask-count prediction multiplies the
    /// sizes of these sets across fields (`pi-attack::predict`).
    ///
    /// Derivation: a walk returns `d + 1` exactly at a node of depth `d`
    /// with exactly one child (the packet can take the missing side),
    /// and returns a longest-match length `d` exactly at a prefix-end
    /// leaf of depth `d`. An empty trie returns only 0.
    pub fn reachable_unwildcard_bits(&self) -> std::collections::BTreeSet<u8> {
        let mut out = std::collections::BTreeSet::new();
        if self.is_empty() {
            out.insert(0);
            return out;
        }
        let mut stack: Vec<(usize, u8)> = vec![(0, 0)];
        while let Some((n, depth)) = stack.pop() {
            let node = &self.nodes[n];
            let child_count = node.children.iter().filter(|c| c.is_some()).count();
            if node.is_end && child_count == 0 {
                out.insert(depth);
            }
            if child_count == 1 && depth < self.field.width() {
                out.insert(depth + 1);
            }
            for c in node.children.into_iter().flatten() {
                stack.push((c as usize, depth + 1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's toy: a single 8-bit field (modelled on IpProto, the
    /// only 8-bit field) with the allow-rule value 00001010.
    fn toy_trie() -> PrefixTrie {
        let mut t = PrefixTrie::new(Field::IpProto);
        t.insert(0b0000_1010, 8);
        t
    }

    #[test]
    fn empty_trie_needs_no_bits() {
        let t = PrefixTrie::new(Field::IpSrc);
        assert_eq!(t.unwildcard_bits(0xdead_beef), 0);
        assert!(t.is_empty());
        assert_eq!(t.longest_match(42), None);
    }

    #[test]
    fn figure_2b_decomposition() {
        // Exactly the paper's table: for each deny row, the number of
        // mask bits equals (shared prefix with 00001010) + 1; the allow
        // value itself needs all 8.
        let t = toy_trie();
        let cases: [(u8, u8); 9] = [
            (0b0000_1010, 8), // allow: full match
            (0b1000_0000, 1), // differs at bit 0
            (0b0100_0000, 2),
            (0b0010_0000, 3),
            (0b0001_0000, 4),
            (0b0000_0000, 5),
            (0b0000_1100, 6),
            (0b0000_1000, 7),
            (0b0000_1011, 8), // differs at the last bit
        ];
        for (value, expected) in cases {
            assert_eq!(
                t.unwildcard_bits(value as u64),
                expected,
                "value {value:08b}"
            );
        }
    }

    #[test]
    fn inside_short_prefix_needs_prefix_len_bits() {
        // allow 10.0.0.0/8 on the real 32-bit field.
        let mut t = PrefixTrie::new(Field::IpSrc);
        t.insert(0x0a00_0000, 8);
        // In-prefix packets: 8 bits, regardless of host bits.
        assert_eq!(t.unwildcard_bits(0x0a01_0203), 8);
        assert_eq!(t.unwildcard_bits(0x0aff_ffff), 8);
        // Out-of-prefix: divergence point + 1.
        assert_eq!(t.unwildcard_bits(0x8000_0000), 1); // bit 0 differs
        assert_eq!(t.unwildcard_bits(0x0b00_0000), 8); // differs at bit 7
        assert_eq!(t.unwildcard_bits(0x0800_0000), 7); // 00001_0.. vs 00001_0? bit 6
    }

    #[test]
    fn nested_prefixes() {
        // 00/2 and 00001010/8 (toy field): packets inside /2 but outside
        // /8 need divergence+1; fully matching needs 8; inside /2 along
        // the /8 path but diverging later still counts correctly.
        let mut t = PrefixTrie::new(Field::IpProto);
        t.insert(0b0000_0000, 2);
        t.insert(0b0000_1010, 8);
        assert_eq!(t.unwildcard_bits(0b0010_0000), 3); // diverge at bit 2
        assert_eq!(t.unwildcard_bits(0b0000_1010), 8); // full match
        assert_eq!(t.unwildcard_bits(0b0000_1011), 8); // diverge at bit 7
        assert_eq!(t.unwildcard_bits(0b1000_0000), 1); // outside /2, bit 0
                                                       // Inside /2, diverging from /8 at bit 4.
        assert_eq!(t.unwildcard_bits(0b0001_0000), 4);
    }

    #[test]
    fn sibling_prefixes_at_same_length() {
        let mut t = PrefixTrie::new(Field::TpDst);
        t.insert(80, 16);
        t.insert(443, 16);
        // 80 = 0b0000000001010000, 443 = 0b0000000110111011.
        assert_eq!(t.unwildcard_bits(80), 16);
        assert_eq!(t.unwildcard_bits(443), 16);
        // 8080 = 0b0001111110010000: diverges from both at bit 3.
        assert_eq!(t.unwildcard_bits(8080), 4);
        // 0x8000: diverges at bit 0.
        assert_eq!(t.unwildcard_bits(0x8000), 1);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut t = toy_trie();
        assert_eq!(t.len(), 1);
        t.insert(0b0000_1010, 8);
        assert_eq!(t.len(), 1);
        t.insert(0b0000_1010, 4); // genuinely new (shorter) prefix
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn contains_and_longest_match() {
        let mut t = PrefixTrie::new(Field::IpSrc);
        t.insert(0x0a00_0000, 8);
        t.insert(0x0a01_0000, 16);
        assert!(t.contains(0x0a00_0000, 8));
        assert!(t.contains(0x0a01_0000, 16));
        assert!(!t.contains(0x0a00_0000, 16));
        assert!(!t.contains(0x0b00_0000, 8));
        assert_eq!(t.longest_match(0x0a01_ffff), Some(16));
        assert_eq!(t.longest_match(0x0a02_ffff), Some(8));
        assert_eq!(t.longest_match(0x0b00_0000), None);
    }

    #[test]
    fn clear_resets() {
        let mut t = toy_trie();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.unwildcard_bits(0), 0);
        t.insert(1, 8);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_insert_panics() {
        PrefixTrie::new(Field::IpSrc).insert(0, 0);
    }

    #[test]
    #[should_panic(expected = "longer than field")]
    fn overlong_insert_panics() {
        PrefixTrie::new(Field::TpDst).insert(0, 17);
    }

    #[test]
    fn reachable_bits_single_full_prefix() {
        // /32 exact on a 32-bit field: every length 1..=32 reachable —
        // the paper's per-field factor of 32.
        let mut t = PrefixTrie::new(Field::IpSrc);
        t.insert(0x0a00_0001, 32);
        let r = t.reachable_unwildcard_bits();
        assert_eq!(r.len(), 32);
        assert_eq!(
            r.iter().copied().collect::<Vec<_>>(),
            (1..=32).collect::<Vec<_>>()
        );
        // 16-bit port, exact: factor 16.
        let mut p = PrefixTrie::new(Field::TpDst);
        p.insert(80, 16);
        assert_eq!(p.reachable_unwildcard_bits().len(), 16);
    }

    #[test]
    fn reachable_bits_short_prefix() {
        // /8 allow rule: lengths 1..=8 (Fig. 2's 8 masks).
        let mut t = PrefixTrie::new(Field::IpSrc);
        t.insert(0x0a00_0000, 8);
        assert_eq!(
            t.reachable_unwildcard_bits()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            (1..=8).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reachable_bits_empty_and_nested() {
        assert_eq!(
            PrefixTrie::new(Field::IpSrc)
                .reachable_unwildcard_bits()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![0]
        );
        // Nested /2 + /8 (toy field): {1..8} but NOT 2 — values inside
        // the /2 following the /8 path that diverge at depth 2 need 3
        // bits, and nothing returns exactly 2… except values diverging
        // at depth 1 get 2. Verify against brute force.
        let mut t = PrefixTrie::new(Field::IpProto);
        t.insert(0b0000_0000, 2);
        t.insert(0b0000_1010, 8);
        let predicted = t.reachable_unwildcard_bits();
        let mut actual = std::collections::BTreeSet::new();
        for v in 0u64..256 {
            actual.insert(t.unwildcard_bits(v));
        }
        assert_eq!(predicted, actual);
    }

    #[test]
    fn reachable_bits_matches_brute_force_for_sibling_ports() {
        let mut t = PrefixTrie::new(Field::TpDst);
        t.insert(80, 16);
        t.insert(443, 16);
        t.insert(8000, 12);
        let predicted = t.reachable_unwildcard_bits();
        let mut actual = std::collections::BTreeSet::new();
        for v in 0u64..65536 {
            actual.insert(t.unwildcard_bits(v));
        }
        assert_eq!(predicted, actual);
    }

    #[test]
    fn exhaustive_toy_complement_produces_each_length_once() {
        // Over all 256 values of the toy field: the allow value needs 8
        // bits; among the other 255, exactly 2^(8-l) values need l bits
        // for l in 1..=8 (the complement decomposition of Fig. 2b).
        let t = toy_trie();
        let mut by_len = [0usize; 9];
        for v in 0u64..256 {
            by_len[t.unwildcard_bits(v) as usize] += 1;
        }
        assert_eq!(by_len[0], 0);
        for l in 1..=7u32 {
            assert_eq!(
                by_len[l as usize],
                1usize << (8 - l),
                "values needing {l} bits"
            );
        }
        // Length 8: the allow value itself + its last-bit neighbour.
        assert_eq!(by_len[8], 2);
    }
}
