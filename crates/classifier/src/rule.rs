//! Flow-table rules.

use std::fmt;

use pi_core::{FlowKey, MaskedKey};

use crate::action::Action;

/// Identifies a rule within its [`crate::FlowTable`].
///
/// Ids are the table's insertion sequence numbers: smaller id ⇒ added
/// earlier, which is the tie-break the paper's §2 describes ("if multiple
/// rules in the flow table match, the one added first will be applied").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u64);

/// One wildcard rule: match + priority + action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Stable identity / insertion sequence number.
    pub id: RuleId,
    /// The wildcard match.
    pub matcher: MaskedKey,
    /// Priority; larger wins. ACL compilation uses 2 levels (whitelist
    /// above the default-deny), but arbitrary values are supported.
    pub priority: u32,
    /// Action applied on match.
    pub action: Action,
}

impl Rule {
    /// True if `packet` satisfies this rule's match.
    pub fn matches(&self, packet: &FlowKey) -> bool {
        self.matcher.matches(packet)
    }

    /// Ordering key under OVS semantics: higher priority first, then
    /// earlier insertion. `a.precedence() > b.precedence()` ⇔ a wins.
    pub fn precedence(&self) -> (u32, std::cmp::Reverse<u64>) {
        (self.priority, std::cmp::Reverse(self.id.0))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} prio={} {} -> {}",
            self.id.0, self.priority, self.matcher, self.action
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::{Field, FlowMask};

    fn rule(id: u64, priority: u32) -> Rule {
        Rule {
            id: RuleId(id),
            matcher: MaskedKey::new(
                FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
                FlowMask::default().with_prefix(Field::IpSrc, 8),
            ),
            priority,
            action: Action::Allow,
        }
    }

    #[test]
    fn precedence_prefers_priority_then_earlier_insertion() {
        let older_low = rule(1, 10);
        let newer_high = rule(2, 20);
        let newer_low = rule(3, 10);
        assert!(newer_high.precedence() > older_low.precedence());
        assert!(older_low.precedence() > newer_low.precedence());
    }

    #[test]
    fn matches_delegates_to_masked_key() {
        let r = rule(1, 0);
        assert!(r.matches(&FlowKey::tcp([10, 9, 9, 9], [1, 1, 1, 1], 5, 6)));
        assert!(!r.matches(&FlowKey::tcp([11, 0, 0, 0], [1, 1, 1, 1], 5, 6)));
    }

    #[test]
    fn display_shows_identity() {
        let r = rule(42, 7);
        let s = r.to_string();
        assert!(s.contains("#42"));
        assert!(s.contains("prio=7"));
        assert!(s.contains("allow"));
    }
}
