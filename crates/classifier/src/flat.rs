//! Flat open-addressing hash tables keyed by precomputed flow hashes.
//!
//! Every Tuple Space Search subtable (and every staged-lookup stage set)
//! is a hash table from a canonical masked [`FlowKey`] to a payload. The
//! std `HashMap` served there, but it costs a SipHash of the whole key
//! per probe and scatters entries behind per-instance random state. The
//! hot path wants the opposite: the hash is **already computed** (one
//! pass per packet via [`pi_core::KeyWords`]), lookups should touch one
//! contiguous slot run, and behaviour must be bit-reproducible.
//!
//! [`FlatTable`] is that store: power-of-two capacity, linear probing
//! from `hash & (capacity - 1)`, and **tombstone-free** removal — a
//! removal rebuilds the probe run after the hole (backward-shift
//! deletion), so tables never accumulate deleted markers and lookup cost
//! never degrades below what the live entries dictate. All operations
//! take the entry hash from the caller; the table itself never hashes.

use pi_core::FlowKey;

/// One occupied slot.
#[derive(Debug, Clone)]
struct Slot<V> {
    hash: u64,
    key: FlowKey,
    value: V,
}

/// A flat open-addressing map from (precomputed hash, canonical key) to
/// `V`.
#[derive(Debug, Clone)]
pub struct FlatTable<V> {
    slots: Vec<Option<Slot<V>>>,
    len: usize,
}

/// Smallest capacity allocated once a table holds entries.
const MIN_CAPACITY: usize = 8;

impl<V> Default for FlatTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> FlatTable<V> {
    /// An empty table (no allocation until the first insert).
    pub fn new() -> Self {
        FlatTable {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot capacity (a power of two, or 0 before first insert).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline(always)]
    fn index_mask(&self) -> usize {
        debug_assert!(self.slots.len().is_power_of_two());
        self.slots.len() - 1
    }

    /// Grows when the next insert would push load above 7/8.
    fn reserve_one(&mut self) {
        if self.slots.is_empty() {
            self.slots = (0..MIN_CAPACITY).map(|_| None).collect();
            return;
        }
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            let new_cap = self.slots.len() * 2;
            let old = std::mem::replace(&mut self.slots, (0..new_cap).map(|_| None).collect());
            for slot in old.into_iter().flatten() {
                self.place(slot);
            }
        }
    }

    /// Inserts into the first free slot of `slot.hash`'s probe run
    /// (caller guarantees the key is absent).
    fn place(&mut self, slot: Slot<V>) {
        let mask = self.index_mask();
        let mut i = (slot.hash as usize) & mask;
        while self.slots[i].is_some() {
            i = (i + 1) & mask;
        }
        self.slots[i] = Some(slot);
    }

    /// Inserts `value` under `(hash, key)`; returns the previous value
    /// when the exact key was already present. `key` must be canonical
    /// (pre-masked) and `hash` must be its flow hash.
    // audit: hotpath -- growth is amortised in `grow`, outside this region by design
    pub fn insert(&mut self, hash: u64, key: FlowKey, value: V) -> Option<V> {
        if !self.slots.is_empty() {
            let mask = self.index_mask();
            let mut i = (hash as usize) & mask;
            loop {
                match &mut self.slots[i] {
                    Some(s) if s.hash == hash && s.key == key => {
                        return Some(std::mem::replace(&mut s.value, value));
                    }
                    Some(_) => i = (i + 1) & mask,
                    None => break,
                }
            }
            // The presence scan already found the probe run's free slot;
            // reuse it unless this insert crosses the load threshold.
            if (self.len + 1) * 8 <= self.slots.len() * 7 {
                self.slots[i] = Some(Slot { hash, key, value });
                self.len += 1;
                return None;
            }
        }
        self.reserve_one();
        self.place(Slot { hash, key, value });
        self.len += 1;
        None
    }

    /// Looks up by precomputed hash plus an equality predicate on the
    /// stored canonical key — how the TSS walk probes with a *raw*
    /// packet: the predicate is a mask-aware comparison, so no masked
    /// key is ever materialised.
    #[inline]
    // audit: hotpath
    pub fn get_by_hash(&self, hash: u64, mut eq: impl FnMut(&FlowKey) -> bool) -> Option<&V> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.index_mask();
        let mut i = (hash as usize) & mask;
        while let Some(s) = &self.slots[i] {
            if s.hash == hash && eq(&s.key) {
                return Some(&s.value);
            }
            i = (i + 1) & mask;
        }
        None
    }

    /// Mutable variant of [`FlatTable::get_by_hash`].
    #[inline]
    // audit: hotpath
    pub fn get_mut_by_hash(
        &mut self,
        hash: u64,
        mut eq: impl FnMut(&FlowKey) -> bool,
    ) -> Option<&mut V> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.index_mask();
        let mut i = (hash as usize) & mask;
        loop {
            match &self.slots[i] {
                Some(s) if s.hash == hash && eq(&s.key) => break,
                Some(_) => i = (i + 1) & mask,
                None => return None,
            }
        }
        self.slots[i].as_mut().map(|s| &mut s.value)
    }

    /// Exact-key lookup (key already canonical).
    pub fn get(&self, hash: u64, key: &FlowKey) -> Option<&V> {
        self.get_by_hash(hash, |k| k == key)
    }

    /// Exact-key mutable lookup.
    pub fn get_mut(&mut self, hash: u64, key: &FlowKey) -> Option<&mut V> {
        self.get_mut_by_hash(hash, |k| k == key)
    }

    /// Removes the entry for `(hash, key)` and rebuilds the probe run
    /// behind it (backward-shift deletion — no tombstones).
    // audit: hotpath
    pub fn remove(&mut self, hash: u64, key: &FlowKey) -> Option<V> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.index_mask();
        let mut i = (hash as usize) & mask;
        loop {
            match &self.slots[i] {
                Some(s) if s.hash == hash && s.key == *key => break,
                Some(_) => i = (i + 1) & mask,
                None => return None,
            }
        }
        let removed = self.slots[i].take().expect("slot found above");
        self.len -= 1;
        // Close the hole: walk the cluster after `i`; any entry whose
        // ideal position does not lie strictly inside (hole, j] slides
        // back into the hole (its probe path passed through it).
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let Some(s) = &self.slots[j] else { break };
            let ideal = (s.hash as usize) & mask;
            if ((j.wrapping_sub(ideal)) & mask) >= ((j.wrapping_sub(hole)) & mask) {
                self.slots[hole] = self.slots[j].take();
                hole = j;
            }
        }
        Some(removed.value)
    }

    /// Keeps only the entries for which `keep` returns true, rebuilding
    /// the table from the survivors (the revalidator's sweep — one
    /// rebuild instead of per-entry hole repairs).
    pub fn retain(&mut self, mut keep: impl FnMut(&FlowKey, &mut V) -> bool) {
        if self.len == 0 {
            return;
        }
        let cap = self.slots.len();
        let old = std::mem::replace(&mut self.slots, (0..cap).map(|_| None).collect());
        self.len = 0;
        for mut slot in old.into_iter().flatten() {
            if keep(&slot.key, &mut slot.value) {
                self.place(slot);
                self.len += 1;
            }
        }
    }

    /// Iterates `(canonical key, value)` in slot order — deterministic
    /// for a given operation sequence (no random hash state).
    pub fn iter(&self) -> impl Iterator<Item = (&FlowKey, &V)> {
        self.slots.iter().flatten().map(|s| (&s.key, &s.value))
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::{flow_hash, for_cases, FlowKey};
    use std::collections::HashMap;

    fn key(n: u32) -> FlowKey {
        FlowKey::tcp(
            std::net::Ipv4Addr::from(0x0a00_0000 + n),
            [10, 0, 0, 1],
            (n % 60_000) as u16,
            443,
        )
    }

    #[test]
    fn insert_get_replace() {
        let mut t = FlatTable::new();
        let k = key(1);
        let h = flow_hash(&k);
        assert_eq!(t.insert(h, k, 10), None);
        assert_eq!(t.get(h, &k), Some(&10));
        assert_eq!(t.insert(h, k, 20), Some(10));
        assert_eq!(t.len(), 1);
        *t.get_mut(h, &k).unwrap() += 1;
        assert_eq!(t.get(h, &k), Some(&21));
        assert_eq!(t.get(flow_hash(&key(2)), &key(2)), None);
    }

    #[test]
    fn remove_backshift_preserves_probe_runs() {
        // Force a cluster by inserting colliding hashes: same low bits.
        let mut t: FlatTable<u32> = FlatTable::new();
        let keys: Vec<FlowKey> = (0..5).map(key).collect();
        // Synthetic hashes landing on the same initial index (mask will
        // be 7 or 15 at this size).
        for (n, k) in keys.iter().enumerate() {
            t.insert(0x100 + ((n as u64) << 32), *k, n as u32);
        }
        // Remove the middle of the cluster; the rest must stay findable.
        assert_eq!(t.remove(0x100 + (2u64 << 32), &keys[2]), Some(2));
        for (n, k) in keys.iter().enumerate() {
            if n == 2 {
                continue;
            }
            assert_eq!(
                t.get(0x100 + ((n as u64) << 32), k),
                Some(&(n as u32)),
                "entry {n} lost after backshift"
            );
        }
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn growth_keeps_all_entries() {
        let mut t = FlatTable::new();
        for n in 0..1000u32 {
            let k = key(n);
            t.insert(flow_hash(&k), k, n);
        }
        assert_eq!(t.len(), 1000);
        assert!(t.capacity().is_power_of_two());
        // Load stays at or below 7/8.
        assert!(t.len() * 8 <= t.capacity() * 7);
        for n in 0..1000u32 {
            let k = key(n);
            assert_eq!(t.get(flow_hash(&k), &k), Some(&n));
        }
    }

    #[test]
    fn get_by_hash_uses_caller_equality() {
        let mut t = FlatTable::new();
        let k = key(7);
        let h = flow_hash(&k);
        t.insert(h, k, "x");
        // Predicate sees the stored canonical key.
        assert_eq!(t.get_by_hash(h, |stored| stored.tp_dst == 443), Some(&"x"));
        assert_eq!(t.get_by_hash(h, |_| false), None);
    }

    #[test]
    fn retain_rebuilds_without_losses() {
        let mut t = FlatTable::new();
        for n in 0..100u32 {
            let k = key(n);
            t.insert(flow_hash(&k), k, n);
        }
        t.retain(|_, v| *v % 3 == 0);
        assert_eq!(t.len(), 34);
        for n in 0..100u32 {
            let k = key(n);
            let expect = (n % 3 == 0).then_some(n);
            assert_eq!(t.get(flow_hash(&k), &k).copied(), expect);
        }
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut t = FlatTable::new();
        for n in 0..50u32 {
            let k = key(n);
            t.insert(flow_hash(&k), k, n);
        }
        let cap = t.capacity();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.capacity(), cap);
        assert_eq!(t.get(flow_hash(&key(1)), &key(1)), None);
    }

    #[test]
    fn iteration_is_deterministic_across_identical_histories() {
        let build = || {
            let mut t = FlatTable::new();
            for n in (0..64u32).rev() {
                let k = key(n);
                t.insert(flow_hash(&k), k, n);
            }
            t.remove(flow_hash(&key(13)), &key(13));
            t.iter().map(|(_, v)| *v).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    /// Randomised differential test against a std HashMap reference.
    #[test]
    fn random_ops_match_hashmap_reference() {
        for_cases(128, 0xf1a7, |rng| {
            let mut t: FlatTable<u64> = FlatTable::new();
            let mut reference: HashMap<FlowKey, u64> = HashMap::new();
            for op in 0..200 {
                let k = key(rng.gen_range(40) as u32);
                let h = flow_hash(&k);
                match rng.gen_range(3) {
                    0 => {
                        assert_eq!(t.insert(h, k, op), reference.insert(k, op));
                    }
                    1 => {
                        assert_eq!(t.remove(h, &k), reference.remove(&k));
                    }
                    _ => {
                        assert_eq!(t.get(h, &k), reference.get(&k));
                    }
                }
                assert_eq!(t.len(), reference.len());
            }
            let mut ours: Vec<(FlowKey, u64)> = t.iter().map(|(k, v)| (*k, *v)).collect();
            let mut theirs: Vec<(FlowKey, u64)> = reference.into_iter().collect();
            let sort_key = |e: &(FlowKey, u64)| (e.0.ip_src, e.0.tp_src, e.1);
            ours.sort_by_key(sort_key);
            theirs.sort_by_key(sort_key);
            assert_eq!(ours, theirs);
        });
    }
}
