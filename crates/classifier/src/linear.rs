//! The reference slow-path classifier: scan every rule.
//!
//! Linear search is what the paper's §2 calls "full flow-table
//! processing on the slow path". It is trivially correct under the
//! priority/insertion-order semantics and serves as ground truth for
//! every other engine (a proptest pins TSS against it).

use pi_core::FlowKey;

use crate::rule::Rule;
use crate::table::FlowTable;

/// A linear-scan classifier borrowing a [`FlowTable`].
#[derive(Debug, Clone, Copy)]
pub struct LinearClassifier<'a> {
    table: &'a FlowTable,
}

impl<'a> LinearClassifier<'a> {
    /// Wraps a table.
    pub fn new(table: &'a FlowTable) -> Self {
        LinearClassifier { table }
    }

    /// Finds the winning rule for `packet`: the matching rule with the
    /// highest priority, ties broken by earliest insertion.
    pub fn classify(&self, packet: &FlowKey) -> Option<&'a Rule> {
        self.table
            .iter()
            .filter(|r| r.matches(packet))
            .max_by_key(|r| r.precedence())
    }

    /// Like [`LinearClassifier::classify`], also reporting how many rules
    /// were examined (always the whole table — that is the point of the
    /// slow path being slow).
    pub fn classify_counting(&self, packet: &FlowKey) -> (Option<&'a Rule>, usize) {
        (self.classify(packet), self.table.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::table::whitelist_with_default_deny;
    use pi_core::{Field, FlowMask, MaskedKey};

    fn acl() -> FlowTable {
        whitelist_with_default_deny(&[MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        )])
    }

    #[test]
    fn whitelist_hit_and_default_deny() {
        let table = acl();
        let c = LinearClassifier::new(&table);
        let inside = FlowKey::tcp([10, 1, 2, 3], [10, 0, 0, 9], 1000, 80);
        let outside = FlowKey::tcp([192, 168, 0, 1], [10, 0, 0, 9], 1000, 80);
        assert_eq!(c.classify(&inside).unwrap().action, Action::Allow);
        assert_eq!(c.classify(&outside).unwrap().action, Action::Deny);
    }

    #[test]
    fn empty_table_matches_nothing() {
        let table = FlowTable::new();
        let c = LinearClassifier::new(&table);
        assert!(c.classify(&FlowKey::default()).is_none());
    }

    #[test]
    fn priority_beats_insertion_order() {
        let mut table = FlowTable::new();
        table.insert(MaskedKey::wildcard(), 1, Action::Deny);
        table.insert(MaskedKey::wildcard(), 5, Action::Allow); // later but higher
        let c = LinearClassifier::new(&table);
        assert_eq!(
            c.classify(&FlowKey::default()).unwrap().action,
            Action::Allow
        );
    }

    #[test]
    fn first_added_wins_ties() {
        // Paper §2: "if multiple rules in the flow table match, the one
        // added first will be applied".
        let mut table = FlowTable::new();
        table.insert(MaskedKey::wildcard(), 3, Action::Allow);
        table.insert(MaskedKey::wildcard(), 3, Action::Deny);
        let c = LinearClassifier::new(&table);
        assert_eq!(
            c.classify(&FlowKey::default()).unwrap().action,
            Action::Allow
        );
    }

    #[test]
    fn counting_reports_table_size() {
        let table = acl();
        let c = LinearClassifier::new(&table);
        let (_, examined) = c.classify_counting(&FlowKey::default());
        assert_eq!(examined, 2);
    }
}
