//! Staged subtable lookup (OVS's metadata → L2 → L3 → L4 optimisation).
//!
//! A plain subtable probe masks the whole packet key and does one hash
//! lookup. A *staged* probe splits the subtable's mask by protocol layer
//! and checks membership one stage at a time, aborting as soon as a stage
//! has no candidate entries. For workloads where an early field (say, the
//! ingress port) already rules a subtable out, a failing probe costs a
//! fraction of a full one.
//!
//! The mitigation ablation (EXPERIMENTS.md E7) uses this to show staged
//! lookup *attenuates* the policy-injection attack — failing probes get
//! cheaper — but does not change its asymptotics: every victim packet
//! still visits every subtable.

use pi_core::{FlowKey, FlowMask, KeyWords, MaskWords, Stage, ALL_FIELDS};

use crate::flat::FlatTable;

/// One active stage of the index: the cumulative mask up to and
/// including this stage, its precomputed words, and the multiset of
/// cumulative-masked entry keys (entry count per key) in a flat table
/// keyed by the deterministic flow hash.
#[derive(Debug, Clone)]
struct StageSet {
    stage: Stage,
    cum: FlowMask,
    cum_words: MaskWords,
    set: FlatTable<u32>,
}

/// Membership index of one subtable's entries, segmented by stage.
///
/// For each stage with at least one significant bit in the subtable mask,
/// the index keeps a multiset of entry keys masked by the *cumulative*
/// mask up to that stage, so stage `i`'s check subsumes stages `0..i`.
///
/// Stage sets sit on the per-packet path (every TSS probe of a staged
/// subtable consults them), so they use the same flat open-addressing
/// store and one-pass masked hashing as the subtables themselves: a
/// probe with precomputed [`KeyWords`] does no SipHash and materialises
/// no masked key.
#[derive(Debug, Clone)]
pub struct StagedIndex {
    stages: Vec<StageSet>,
}

impl StagedIndex {
    /// Builds an index for a subtable with mask `mask` (no entries yet).
    pub fn new(mask: &FlowMask) -> Self {
        let mut stages = Vec::new();
        let mut cumulative = FlowMask::WILDCARD;
        for stage in Stage::ALL {
            let mut stage_mask = FlowMask::WILDCARD;
            for f in ALL_FIELDS {
                if f.stage() == stage {
                    let bits = mask.field(f);
                    if bits != 0 {
                        stage_mask.unwildcard(f, bits);
                    }
                }
            }
            if !stage_mask.is_wildcard_all() {
                cumulative = cumulative.union(&stage_mask);
                stages.push(StageSet {
                    stage,
                    cum: cumulative,
                    cum_words: MaskWords::of(&cumulative),
                    set: FlatTable::new(),
                });
            }
        }
        StagedIndex { stages }
    }

    /// Number of active (non-empty-mask) stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The stages present, in probe order (diagnostics).
    pub fn stages(&self) -> impl Iterator<Item = Stage> + '_ {
        self.stages.iter().map(|s| s.stage)
    }

    /// Registers an entry key (already masked by the subtable mask).
    pub fn insert(&mut self, masked_key: &FlowKey) {
        for s in self.stages.iter_mut() {
            let k = s.cum.apply(masked_key);
            let hash = KeyWords::of(&k).full_hash();
            match s.set.get_mut(hash, &k) {
                Some(n) => *n += 1,
                None => {
                    s.set.insert(hash, k, 1);
                }
            }
        }
    }

    /// Unregisters an entry key.
    pub fn remove(&mut self, masked_key: &FlowKey) {
        for s in self.stages.iter_mut() {
            let k = s.cum.apply(masked_key);
            let hash = KeyWords::of(&k).full_hash();
            if let Some(n) = s.set.get_mut(hash, &k) {
                *n -= 1;
                if *n == 0 {
                    s.set.remove(hash, &k);
                }
            }
        }
    }

    /// Probes the index: returns `(may_match, stages_examined)`.
    ///
    /// `may_match == false` guarantees no entry of the subtable matches
    /// `packet`; `true` means the caller must do the final exact check
    /// (the last stage's cumulative mask *is* the subtable mask, so a
    /// `true` from the last stage is in fact definitive — the caller can
    /// treat it as a hit).
    pub fn probe(&self, packet: &FlowKey) -> (bool, usize) {
        self.probe_with(packet, &KeyWords::of(packet))
    }

    /// [`StagedIndex::probe`] with the packet's words already extracted
    /// (the TSS walk extracts once per packet for all subtables).
    pub fn probe_with(&self, packet: &FlowKey, words: &KeyWords) -> (bool, usize) {
        for (i, s) in self.stages.iter().enumerate() {
            let hash = words.masked_hash(&s.cum_words);
            if s.set
                .get_by_hash(hash, |k| s.cum.key_eq(k, packet))
                .is_none()
            {
                return (false, i + 1);
            }
        }
        (true, self.stages.len().max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::Field;

    fn mask_port_ip_tp() -> FlowMask {
        FlowMask::default()
            .with_exact(Field::InPort)
            .with_prefix(Field::IpSrc, 8)
            .with_exact(Field::TpDst)
    }

    fn key(in_port: u32, ip: [u8; 4], port: u16) -> FlowKey {
        let mut k = FlowKey::tcp(ip, [9, 9, 9, 9], 555, port);
        k.in_port = in_port;
        k
    }

    #[test]
    fn stages_follow_mask_shape() {
        let idx = StagedIndex::new(&mask_port_ip_tp());
        // Metadata (in_port), L3 (ip_src), L4 (tp_dst) — no L2 bits.
        assert_eq!(idx.stage_count(), 3);
        let idx2 = StagedIndex::new(&FlowMask::default().with_exact(Field::TpSrc));
        assert_eq!(idx2.stage_count(), 1);
    }

    #[test]
    fn early_stage_mismatch_aborts_cheap() {
        let mask = mask_port_ip_tp();
        let mut idx = StagedIndex::new(&mask);
        idx.insert(&mask.apply(&key(1, [10, 0, 0, 0], 80)));
        // Different in_port: first stage already fails.
        let (may, stages) = idx.probe(&key(2, [10, 0, 0, 0], 80));
        assert!(!may);
        assert_eq!(stages, 1);
        // Same port, different /8: fails at stage 2.
        let (may, stages) = idx.probe(&key(1, [11, 0, 0, 0], 80));
        assert!(!may);
        assert_eq!(stages, 2);
        // Same port and net, different dst port: fails at stage 3.
        let (may, stages) = idx.probe(&key(1, [10, 5, 5, 5], 81));
        assert!(!may);
        assert_eq!(stages, 3);
        // Full match.
        let (may, stages) = idx.probe(&key(1, [10, 5, 5, 5], 80));
        assert!(may);
        assert_eq!(stages, 3);
    }

    #[test]
    fn cumulative_masks_prevent_cross_stage_false_hits() {
        // Two entries that between them cover a probe's stage values but no
        // single entry matches: (port1, netA) and (port2, netB). A probe
        // (port1, netB) must NOT pass — cumulative masking catches it at
        // stage 2 because (port1, netB) was never inserted as a pair.
        let mask = FlowMask::default()
            .with_exact(Field::InPort)
            .with_prefix(Field::IpSrc, 8);
        let mut idx = StagedIndex::new(&mask);
        idx.insert(&mask.apply(&key(1, [10, 0, 0, 0], 0)));
        idx.insert(&mask.apply(&key(2, [11, 0, 0, 0], 0)));
        let (may, _) = idx.probe(&key(1, [11, 0, 0, 0], 0));
        assert!(!may, "cross-stage combination must not match");
        let (may, _) = idx.probe(&key(2, [11, 9, 9, 9], 0));
        assert!(may);
    }

    #[test]
    fn remove_clears_membership() {
        let mask = mask_port_ip_tp();
        let mut idx = StagedIndex::new(&mask);
        let k1 = mask.apply(&key(1, [10, 0, 0, 0], 80));
        let k2 = mask.apply(&key(1, [10, 0, 0, 0], 81));
        idx.insert(&k1);
        idx.insert(&k2);
        idx.remove(&k1);
        assert!(!idx.probe(&key(1, [10, 0, 0, 0], 80)).0);
        assert!(idx.probe(&key(1, [10, 0, 0, 0], 81)).0);
        idx.remove(&k2);
        assert!(!idx.probe(&key(1, [10, 0, 0, 0], 81)).0);
    }

    #[test]
    fn duplicate_inserts_require_matching_removes() {
        let mask = FlowMask::default().with_exact(Field::TpDst);
        let mut idx = StagedIndex::new(&mask);
        let k = mask.apply(&key(0, [0, 0, 0, 0], 443));
        idx.insert(&k);
        idx.insert(&k);
        idx.remove(&k);
        assert!(idx.probe(&key(5, [1, 2, 3, 4], 443)).0, "one copy remains");
        idx.remove(&k);
        assert!(!idx.probe(&key(5, [1, 2, 3, 4], 443)).0);
    }

    #[test]
    fn empty_mask_index_has_no_stages_and_matches() {
        let idx = StagedIndex::new(&FlowMask::WILDCARD);
        assert_eq!(idx.stage_count(), 0);
        let (may, stages) = idx.probe(&FlowKey::default());
        assert!(may);
        assert_eq!(stages, 1); // minimum cost of touching the subtable
    }
}
