//! The flow table: an ordered set of (possibly overlapping) wildcard rules.

use std::collections::BTreeMap;

use pi_core::{Field, FlowMask, MaskedKey, ALL_FIELDS};

use crate::action::Action;
use crate::rule::{Rule, RuleId};
use crate::trie::PrefixTrie;

/// A flow table with OVS semantics.
///
/// * Rules may overlap; on lookup the highest-priority match wins, ties
///   broken by earliest insertion (paper §2).
/// * The table maintains, incrementally, the metadata the slow path's
///   un-wildcarding needs: per-field mask unions ("active fields") and
///   per-field [`PrefixTrie`]s of the prefixes rules actually use.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    rules: BTreeMap<RuleId, Rule>,
    next_seq: u64,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the table has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Adds a rule; returns its id. Later-added rules lose ties.
    pub fn insert(&mut self, matcher: MaskedKey, priority: u32, action: Action) -> RuleId {
        let id = RuleId(self.next_seq);
        self.next_seq += 1;
        self.rules.insert(
            id,
            Rule {
                id,
                matcher,
                priority,
                action,
            },
        );
        id
    }

    /// Removes a rule by id; returns it if present.
    pub fn remove(&mut self, id: RuleId) -> Option<Rule> {
        self.rules.remove(&id)
    }

    /// Looks up a rule by id.
    pub fn get(&self, id: RuleId) -> Option<&Rule> {
        self.rules.get(&id)
    }

    /// Iterates rules in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.rules.values()
    }

    /// The union of every rule's mask: which bits of which fields any
    /// rule can distinguish. Fields outside this union can always stay
    /// wildcarded in megaflow entries.
    pub fn active_mask(&self) -> FlowMask {
        self.rules
            .values()
            .fold(FlowMask::WILDCARD, |acc, r| acc.union(r.matcher.mask()))
    }

    /// Fields with at least one significant bit in some rule.
    pub fn active_fields(&self) -> Vec<Field> {
        self.active_mask().touched_fields()
    }

    /// Builds the per-field prefix tries the un-wildcarding algorithm
    /// consults. A trie is built for each requested field; a rule
    /// contributes a prefix iff its mask on the field is a contiguous
    /// MSB-aligned prefix (CIDR shape). Rules with non-prefix masks on a
    /// trie field are reported so the caller can fall back to exact
    /// un-wildcarding for them.
    pub fn build_tries(&self, fields: &[Field]) -> TrieSet {
        let mut tries = Vec::new();
        for &field in fields {
            let mut trie = PrefixTrie::new(field);
            let mut has_non_prefix = false;
            for rule in self.rules.values() {
                let mask = rule.matcher.mask().field(field);
                if mask == 0 {
                    continue; // field wildcarded: no constraint
                }
                match prefix_len_of_mask(field, mask) {
                    Some(len) => {
                        trie.insert(rule.matcher.key().field(field), len);
                    }
                    None => has_non_prefix = true,
                }
            }
            tries.push(FieldTrie {
                field,
                trie,
                has_non_prefix,
            });
        }
        TrieSet { tries }
    }
}

/// If `mask` is a contiguous, MSB-aligned prefix mask for `field`,
/// returns its length; `None` otherwise (including the zero mask).
pub fn prefix_len_of_mask(field: Field, mask: u64) -> Option<u8> {
    if mask == 0 {
        return None;
    }
    let w = field.width();
    (1..=w).find(|&len| field.prefix_mask(len) == mask)
}

/// A trie plus bookkeeping for one field.
#[derive(Debug, Clone)]
pub struct FieldTrie {
    /// The field this trie indexes.
    pub field: Field,
    /// Prefixes of every rule that matches this field with a CIDR mask.
    pub trie: PrefixTrie,
    /// True if some rule matches this field with a non-prefix mask; the
    /// un-wildcarder must then fall back to exact match on this field.
    pub has_non_prefix: bool,
}

/// The set of per-field tries for a table snapshot.
#[derive(Debug, Clone, Default)]
pub struct TrieSet {
    tries: Vec<FieldTrie>,
}

impl TrieSet {
    /// The trie for `field`, if one was built.
    pub fn get(&self, field: Field) -> Option<&FieldTrie> {
        self.tries.iter().find(|t| t.field == field)
    }

    /// Iterates the field tries.
    pub fn iter(&self) -> impl Iterator<Item = &FieldTrie> {
        self.tries.iter()
    }
}

/// Sanity helper used by tests and the CMS compiler: true if the rules in
/// the table are non-overlapping (at most one can match any packet).
/// O(n²) — diagnostics only.
pub fn rules_non_overlapping(table: &FlowTable) -> bool {
    let rules: Vec<&Rule> = table.iter().collect();
    for (i, a) in rules.iter().enumerate() {
        for b in rules.iter().skip(i + 1) {
            if a.matcher.overlaps(&b.matcher) {
                return false;
            }
        }
    }
    true
}

/// Builds the classic whitelist + default-deny ACL shape the paper's CMS
/// model produces: each whitelist entry at priority 1, a catch-all deny
/// at priority 0 added last.
pub fn whitelist_with_default_deny(whitelist: &[MaskedKey]) -> FlowTable {
    let mut table = FlowTable::new();
    for mk in whitelist {
        table.insert(*mk, 1, Action::Allow);
    }
    table.insert(MaskedKey::wildcard(), 0, Action::Deny);
    table
}

/// The number of distinct megaflow masks the slow path can generate for
/// `table` with tries on `trie_fields`: the product over trie-enabled,
/// CIDR-clean fields of the sizes of their reachable un-wildcarding
/// depth sets. This is both the attacker's planning model
/// (`pi-attack::predict`) and the defender's admission check
/// (`pi-mitigation::MaskBudget`).
pub fn reachable_megaflow_mask_count(table: &FlowTable, trie_fields: &[Field]) -> u64 {
    let tries = table.build_tries(trie_fields);
    let mut product: u64 = 1;
    for ft in tries.iter() {
        if ft.has_non_prefix || ft.trie.is_empty() {
            continue; // constant contribution to every mask
        }
        let reachable = ft.trie.reachable_unwildcard_bits();
        product = product.saturating_mul(reachable.len() as u64);
    }
    product.max(1)
}

/// The total number of significant-bit patterns (masks) among the rules —
/// a coarse diagnostic, not the megaflow mask count.
pub fn distinct_rule_masks(table: &FlowTable) -> usize {
    let mut masks: Vec<FlowMask> = table.iter().map(|r| *r.matcher.mask()).collect();
    masks.sort_by_key(|m| ALL_FIELDS.iter().map(|f| m.field(*f)).collect::<Vec<u64>>());
    masks.dedup();
    masks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::FlowKey;

    fn mk(ip: [u8; 4], len: u8) -> MaskedKey {
        MaskedKey::new(
            FlowKey::tcp(ip, [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, len),
        )
    }

    #[test]
    fn insert_assigns_increasing_ids() {
        let mut t = FlowTable::new();
        let a = t.insert(mk([10, 0, 0, 0], 8), 1, Action::Allow);
        let b = t.insert(mk([11, 0, 0, 0], 8), 1, Action::Deny);
        assert!(a < b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_and_get() {
        let mut t = FlowTable::new();
        let id = t.insert(mk([10, 0, 0, 0], 8), 1, Action::Allow);
        assert!(t.get(id).is_some());
        let removed = t.remove(id).unwrap();
        assert_eq!(removed.id, id);
        assert!(t.get(id).is_none());
        assert!(t.is_empty());
        assert!(t.remove(id).is_none());
    }

    #[test]
    fn active_mask_is_union() {
        let mut t = FlowTable::new();
        t.insert(mk([10, 0, 0, 0], 8), 1, Action::Allow);
        t.insert(
            MaskedKey::new(
                FlowKey::tcp([0, 0, 0, 0], [0, 0, 0, 0], 0, 443),
                FlowMask::default().with_exact(Field::TpDst),
            ),
            1,
            Action::Allow,
        );
        let active = t.active_mask();
        assert_eq!(active.field(Field::IpSrc), Field::IpSrc.prefix_mask(8));
        assert_eq!(active.field(Field::TpDst), 0xffff);
        assert_eq!(active.field(Field::TpSrc), 0);
        assert_eq!(t.active_fields(), vec![Field::IpSrc, Field::TpDst]);
    }

    #[test]
    fn prefix_len_detection() {
        assert_eq!(prefix_len_of_mask(Field::IpSrc, 0xff00_0000), Some(8));
        assert_eq!(prefix_len_of_mask(Field::IpSrc, 0xffff_ffff), Some(32));
        assert_eq!(prefix_len_of_mask(Field::TpDst, 0xffff), Some(16));
        assert_eq!(prefix_len_of_mask(Field::TpDst, 0x8000), Some(1));
        assert_eq!(prefix_len_of_mask(Field::IpSrc, 0x00ff_0000), None);
        assert_eq!(prefix_len_of_mask(Field::IpSrc, 0), None);
        assert_eq!(prefix_len_of_mask(Field::TpDst, 0x0001), None);
    }

    #[test]
    fn build_tries_collects_prefixes_and_flags_non_prefix() {
        let mut t = FlowTable::new();
        t.insert(mk([10, 0, 0, 0], 8), 1, Action::Allow);
        // Non-prefix mask on TpDst (low bit only).
        t.insert(
            MaskedKey::new(
                FlowKey::tcp([0, 0, 0, 0], [0, 0, 0, 0], 0, 1),
                FlowMask::default().with(Field::TpDst, 0x0001),
            ),
            1,
            Action::Allow,
        );
        let tries = t.build_tries(&[Field::IpSrc, Field::TpDst]);
        let ip = tries.get(Field::IpSrc).unwrap();
        assert!(!ip.has_non_prefix);
        assert_eq!(ip.trie.len(), 1);
        let port = tries.get(Field::TpDst).unwrap();
        assert!(port.has_non_prefix);
        assert_eq!(port.trie.len(), 0);
        assert!(tries.get(Field::IpDst).is_none());
    }

    #[test]
    fn whitelist_shape() {
        let t = whitelist_with_default_deny(&[mk([10, 0, 0, 0], 8)]);
        assert_eq!(t.len(), 2);
        let rules: Vec<&Rule> = t.iter().collect();
        assert_eq!(rules[0].priority, 1);
        assert_eq!(rules[0].action, Action::Allow);
        assert_eq!(rules[1].priority, 0);
        assert_eq!(rules[1].action, Action::Deny);
        assert!(rules[1].matcher.mask().is_wildcard_all());
        // Whitelist+deny is overlapping by construction.
        assert!(!rules_non_overlapping(&t));
    }

    #[test]
    fn non_overlap_check() {
        let mut t = FlowTable::new();
        t.insert(mk([10, 0, 0, 0], 8), 0, Action::Allow);
        t.insert(mk([11, 0, 0, 0], 8), 0, Action::Deny);
        assert!(rules_non_overlapping(&t));
        t.insert(mk([10, 1, 0, 0], 16), 0, Action::Deny); // inside 10/8
        assert!(!rules_non_overlapping(&t));
    }

    #[test]
    fn distinct_rule_mask_count() {
        let mut t = FlowTable::new();
        t.insert(mk([10, 0, 0, 0], 8), 0, Action::Allow);
        t.insert(mk([11, 0, 0, 0], 8), 0, Action::Allow);
        t.insert(mk([12, 0, 0, 0], 16), 0, Action::Allow);
        assert_eq!(distinct_rule_masks(&t), 2);
    }
}
