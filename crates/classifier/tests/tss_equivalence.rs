//! Randomised property test: Tuple Space Search agrees with the linear
//! reference classifier (DESIGN.md invariant 2).
//!
//! Two regimes are pinned:
//! * **Non-overlapping entries** (the megaflow invariant): first-match
//!   TSS lookup must equal linear classification.
//! * **Arbitrary overlapping rules**: priority-aware TSS
//!   (`lookup_best_by`) must equal linear classification under OVS
//!   precedence.
//!
//! Cases are drawn from the deterministic in-house [`SplitMix64`]
//! generator (no external dependencies) — each case index is its own
//! reproducible seed.

use pi_classifier::{Action, FlowTable, LinearClassifier, StagedIndex, TupleSpaceSearch};
use pi_core::{Field, FlowKey, FlowMask, MaskedKey, SplitMix64};
use std::collections::HashMap;

const CASES: u64 = 256;

/// A restricted rule universe that makes accidental matches likely
/// enough to be interesting: ip_src prefixes over four /8 roots plus
/// optional exact tp_dst from a small port set.
fn rand_masked_key(rng: &mut SplitMix64) -> MaskedKey {
    let root = rng.gen_range(4) as u32;
    let len = rng.gen_range(33) as u8;
    let port_sel = rng.gen_range(3) as usize;
    let host = rng.next_u32();
    let ip = ((10 + root) << 24) | (host & 0x00ff_ffff);
    let mut mask = FlowMask::default();
    if len > 0 {
        mask = mask.with_prefix(Field::IpSrc, len);
    }
    let mut key = FlowKey::tcp(std::net::Ipv4Addr::from(ip), [192, 168, 0, 1], 0, 0);
    if port_sel > 0 {
        mask = mask.with_exact(Field::TpDst);
        key.tp_dst = [80u16, 443][port_sel - 1];
    }
    MaskedKey::new(key, mask)
}

fn rand_packet(rng: &mut SplitMix64) -> FlowKey {
    let root = rng.gen_range(6) as u32;
    let host = rng.next_u32();
    let port = [80u16, 443, 8080][rng.gen_range(3) as usize];
    let ip = ((9 + root) << 24) | (host & 0x00ff_ffff);
    FlowKey::tcp(std::net::Ipv4Addr::from(ip), [192, 168, 0, 1], 1234, port)
}

fn rand_vec<T>(
    rng: &mut SplitMix64,
    lo: u64,
    hi: u64,
    mut gen: impl FnMut(&mut SplitMix64) -> T,
) -> Vec<T> {
    let n = lo + rng.gen_range(hi - lo);
    (0..n).map(|_| gen(rng)).collect()
}

/// Non-overlapping regime: build disjoint exact-ish entries, compare
/// first-match TSS against a table of the same rules.
#[test]
fn tss_equals_linear_on_non_overlapping() {
    pi_core::for_cases(CASES, 0x11, |rng| {
        let seeds = rand_vec(rng, 1, 40, rand_masked_key);
        let packets = rand_vec(rng, 1, 40, rand_packet);
        // Keep only mutually non-overlapping masked keys (greedy filter).
        let mut chosen: Vec<MaskedKey> = Vec::new();
        for mk in seeds {
            if chosen.iter().all(|c| !c.overlaps(&mk)) {
                chosen.push(mk);
            }
        }
        let mut tss = TupleSpaceSearch::default();
        let mut table = FlowTable::new();
        for (i, mk) in chosen.iter().enumerate() {
            tss.insert(*mk, i);
            table.insert(
                *mk,
                0,
                if i % 2 == 0 {
                    Action::Allow
                } else {
                    Action::Deny
                },
            );
        }
        let linear = LinearClassifier::new(&table);
        for pkt in &packets {
            let tss_hit = tss.peek(pkt).value.copied();
            let lin_hit = linear.classify(pkt).map(|r| r.id.0 as usize);
            // Rule ids equal insertion sequence = our payload indices.
            assert_eq!(tss_hit, lin_hit, "packet {}", pkt);
        }
    });
}

/// Overlapping regime: same rules in both engines; priority-aware
/// TSS must reproduce linear's precedence choice exactly.
#[test]
fn priority_tss_equals_linear_on_overlapping() {
    pi_core::for_cases(CASES, 0x12, |rng| {
        let entries = rand_vec(rng, 1, 40, |rng| {
            (rand_masked_key(rng), rng.gen_range(4) as u32)
        });
        let packets = rand_vec(rng, 1, 40, rand_packet);
        let mut tss: TupleSpaceSearch<(u32, u64)> = TupleSpaceSearch::default();
        let mut table = FlowTable::new();
        for (mk, prio) in &entries {
            let id = table.insert(*mk, *prio, Action::Allow);
            // TSS with identical (mask,key) collides; keep the winner the
            // same way OVS would: higher (priority, earlier id) stays.
            match tss.get_mut(mk) {
                Some(existing) => {
                    let candidate = (*prio, u64::MAX - id.0);
                    if candidate > *existing {
                        *existing = candidate;
                    }
                }
                None => {
                    tss.insert(*mk, (*prio, u64::MAX - id.0));
                }
            }
        }
        let linear = LinearClassifier::new(&table);
        for pkt in &packets {
            let tss_best = tss.lookup_best_by(pkt, |v| *v).value.copied();
            let lin_best = linear
                .classify(pkt)
                .map(|r| (r.priority, u64::MAX - r.id.0));
            assert_eq!(tss_best, lin_best, "packet {}", pkt);
        }
    });
}

/// Mask-count law for the classifier: the number of subtables equals
/// the number of distinct masks inserted.
#[test]
fn subtable_count_equals_distinct_masks() {
    pi_core::for_cases(CASES, 0x13, |rng| {
        let entries = rand_vec(rng, 1, 60, rand_masked_key);
        let mut tss = TupleSpaceSearch::default();
        let mut distinct: Vec<FlowMask> = Vec::new();
        for mk in &entries {
            tss.insert(*mk, ());
            if !distinct.contains(mk.mask()) {
                distinct.push(*mk.mask());
            }
        }
        assert_eq!(tss.subtable_count(), distinct.len());
    });
}

/// A straight-line reference model of `TupleSpaceSearch` built on std
/// `HashMap` subtables: one `(mask, HashMap)` pair per distinct mask in
/// first-appearance order, walked sequentially, with the same stats
/// accounting. The real engine's flat open-addressing subtables and
/// one-pass masked hashing must be observationally indistinguishable
/// from this — values, probe counts, stage units, and counters.
struct ReferenceTss {
    subtables: Vec<(FlowMask, usize, HashMap<FlowKey, u64>)>,
    lookups: u64,
    subtables_probed: u64,
    stage_checks: u64,
    hits: u64,
}

impl ReferenceTss {
    fn new() -> Self {
        ReferenceTss {
            subtables: Vec::new(),
            lookups: 0,
            subtables_probed: 0,
            stage_checks: 0,
            hits: 0,
        }
    }

    fn insert(&mut self, mk: &MaskedKey, v: u64) -> Option<u64> {
        let pos = self.subtables.iter().position(|(m, _, _)| m == mk.mask());
        let idx = match pos {
            Some(i) => i,
            None => {
                // Full probe cost = active stage count of the mask (≥1),
                // same rule the engine derives via StagedIndex.
                let cost = StagedIndex::new(mk.mask()).stage_count().max(1);
                self.subtables.push((*mk.mask(), cost, HashMap::new()));
                self.subtables.len() - 1
            }
        };
        self.subtables[idx].2.insert(*mk.key(), v)
    }

    fn remove(&mut self, mk: &MaskedKey) -> Option<u64> {
        let idx = self.subtables.iter().position(|(m, _, _)| m == mk.mask())?;
        let removed = self.subtables[idx].2.remove(mk.key());
        if removed.is_some() && self.subtables[idx].2.is_empty() {
            // Relative probe order of the survivors is preserved, like
            // the engine's `order.retain`.
            self.subtables.remove(idx);
        }
        removed
    }

    /// Sequential walk with stats, mirroring `lookup` (non-staged).
    fn lookup(&mut self, packet: &FlowKey) -> (Option<u64>, usize, usize) {
        self.lookups += 1;
        let mut probes = 0;
        let mut stage_checks = 0;
        let mut value = None;
        for (mask, cost, table) in &self.subtables {
            probes += 1;
            stage_checks += cost;
            if let Some(v) = table.get(&mask.apply(packet)) {
                self.hits += 1;
                value = Some(*v);
                break;
            }
        }
        self.subtables_probed += probes as u64;
        self.stage_checks += stage_checks as u64;
        (value, probes, stage_checks)
    }

    fn len(&self) -> usize {
        self.subtables.iter().map(|(_, _, t)| t.len()).sum()
    }
}

/// Differential test: a randomized insert/remove/lookup interleaving
/// drives the flat-subtable engine and the HashMap reference in
/// lock-step; every observable — returned values, probe and stage
/// counts, subtable count, entry count, masks in probe order, and the
/// accumulated [`pi_classifier::TssStats`] — must match exactly.
#[test]
fn flat_subtables_match_hashmap_reference_model() {
    pi_core::for_cases(CASES, 0x15, |rng| {
        let mut tss: TupleSpaceSearch<u64> = TupleSpaceSearch::default();
        let mut reference = ReferenceTss::new();
        // Draw keys from a small pool so removes and re-inserts of the
        // same masked key actually happen.
        let pool = rand_vec(rng, 8, 24, rand_masked_key);
        for op in 0..300u64 {
            match rng.gen_range(4) {
                0 | 1 => {
                    let mk = *rng.choose(&pool).unwrap();
                    assert_eq!(tss.insert(mk, op), reference.insert(&mk, op));
                }
                2 => {
                    let mk = rng.choose(&pool).unwrap();
                    assert_eq!(tss.remove(mk), reference.remove(mk));
                }
                _ => {
                    let pkt = if rng.gen_bool(0.5) {
                        // Probe a witness of a pool entry: likely hit.
                        rng.choose(&pool).unwrap().witness()
                    } else {
                        rand_packet(rng)
                    };
                    let out = tss.lookup(&pkt);
                    let (ref_v, ref_probes, ref_stages) = reference.lookup(&pkt);
                    assert_eq!(out.value.copied(), ref_v, "value for {pkt}");
                    assert_eq!(out.probes, ref_probes, "probes for {pkt}");
                    assert_eq!(out.stage_checks, ref_stages, "stages for {pkt}");
                }
            }
            assert_eq!(tss.len(), reference.len());
            assert_eq!(tss.subtable_count(), reference.subtables.len());
            assert_eq!(
                tss.masks(),
                reference
                    .subtables
                    .iter()
                    .map(|(m, _, _)| *m)
                    .collect::<Vec<_>>(),
                "probe order must match the reference"
            );
            let s = tss.stats();
            assert_eq!(s.lookups, reference.lookups);
            assert_eq!(s.subtables_probed, reference.subtables_probed);
            assert_eq!(s.stage_checks, reference.stage_checks);
            assert_eq!(s.hits, reference.hits);
        }
        // Entry sets agree exactly at the end.
        let mut ours: Vec<(FlowKey, u64)> = tss.iter().map(|(mk, v)| (*mk.key(), *v)).collect();
        let mut theirs: Vec<(FlowKey, u64)> = reference
            .subtables
            .iter()
            .flat_map(|(_, _, t)| t.iter().map(|(k, v)| (*k, *v)))
            .collect();
        let key_of = |e: &(FlowKey, u64)| (e.0.ip_src, e.0.tp_dst, e.1);
        ours.sort_by_key(key_of);
        theirs.sort_by_key(key_of);
        assert_eq!(ours, theirs);
    });
}

/// Removal restores the exact pre-insertion observable state.
#[test]
fn insert_remove_is_identity() {
    pi_core::for_cases(CASES, 0x14, |rng| {
        let base = rand_vec(rng, 0, 20, rand_masked_key);
        let extra = rand_masked_key(rng);
        let probes = rand_vec(rng, 1, 20, rand_packet);
        let mut tss = TupleSpaceSearch::default();
        for (i, mk) in base.iter().enumerate() {
            tss.insert(*mk, i as u64);
        }
        let before: Vec<Option<u64>> = probes.iter().map(|p| tss.peek(p).value.copied()).collect();
        let had = tss.get(&extra).copied();
        tss.insert(extra, 999_999);
        match had {
            Some(v) => {
                tss.insert(extra, v);
            }
            None => {
                tss.remove(&extra);
            }
        }
        let after: Vec<Option<u64>> = probes.iter().map(|p| tss.peek(p).value.copied()).collect();
        assert_eq!(before, after);
    });
}
