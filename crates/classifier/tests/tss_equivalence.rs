//! Randomised property test: Tuple Space Search agrees with the linear
//! reference classifier (DESIGN.md invariant 2).
//!
//! Two regimes are pinned:
//! * **Non-overlapping entries** (the megaflow invariant): first-match
//!   TSS lookup must equal linear classification.
//! * **Arbitrary overlapping rules**: priority-aware TSS
//!   (`lookup_best_by`) must equal linear classification under OVS
//!   precedence.
//!
//! Cases are drawn from the deterministic in-house [`SplitMix64`]
//! generator (no external dependencies) — each case index is its own
//! reproducible seed.

use pi_classifier::{Action, FlowTable, LinearClassifier, TupleSpaceSearch};
use pi_core::{Field, FlowKey, FlowMask, MaskedKey, SplitMix64};

const CASES: u64 = 256;

/// A restricted rule universe that makes accidental matches likely
/// enough to be interesting: ip_src prefixes over four /8 roots plus
/// optional exact tp_dst from a small port set.
fn rand_masked_key(rng: &mut SplitMix64) -> MaskedKey {
    let root = rng.gen_range(4) as u32;
    let len = rng.gen_range(33) as u8;
    let port_sel = rng.gen_range(3) as usize;
    let host = rng.next_u32();
    let ip = ((10 + root) << 24) | (host & 0x00ff_ffff);
    let mut mask = FlowMask::default();
    if len > 0 {
        mask = mask.with_prefix(Field::IpSrc, len);
    }
    let mut key = FlowKey::tcp(std::net::Ipv4Addr::from(ip), [192, 168, 0, 1], 0, 0);
    if port_sel > 0 {
        mask = mask.with_exact(Field::TpDst);
        key.tp_dst = [80u16, 443][port_sel - 1];
    }
    MaskedKey::new(key, mask)
}

fn rand_packet(rng: &mut SplitMix64) -> FlowKey {
    let root = rng.gen_range(6) as u32;
    let host = rng.next_u32();
    let port = [80u16, 443, 8080][rng.gen_range(3) as usize];
    let ip = ((9 + root) << 24) | (host & 0x00ff_ffff);
    FlowKey::tcp(std::net::Ipv4Addr::from(ip), [192, 168, 0, 1], 1234, port)
}

fn rand_vec<T>(rng: &mut SplitMix64, lo: u64, hi: u64, mut gen: impl FnMut(&mut SplitMix64) -> T) -> Vec<T> {
    let n = lo + rng.gen_range(hi - lo);
    (0..n).map(|_| gen(rng)).collect()
}

/// Non-overlapping regime: build disjoint exact-ish entries, compare
/// first-match TSS against a table of the same rules.
#[test]
fn tss_equals_linear_on_non_overlapping() {
    pi_core::for_cases(CASES, 0x11, |rng| {
        let seeds = rand_vec(rng, 1, 40, rand_masked_key);
        let packets = rand_vec(rng, 1, 40, rand_packet);
        // Keep only mutually non-overlapping masked keys (greedy filter).
        let mut chosen: Vec<MaskedKey> = Vec::new();
        for mk in seeds {
            if chosen.iter().all(|c| !c.overlaps(&mk)) {
                chosen.push(mk);
            }
        }
        let mut tss = TupleSpaceSearch::default();
        let mut table = FlowTable::new();
        for (i, mk) in chosen.iter().enumerate() {
            tss.insert(*mk, i);
            table.insert(*mk, 0, if i % 2 == 0 { Action::Allow } else { Action::Deny });
        }
        let linear = LinearClassifier::new(&table);
        for pkt in &packets {
            let tss_hit = tss.peek(pkt).value.copied();
            let lin_hit = linear.classify(pkt).map(|r| r.id.0 as usize);
            // Rule ids equal insertion sequence = our payload indices.
            assert_eq!(tss_hit, lin_hit, "packet {}", pkt);
        }
    });
}

/// Overlapping regime: same rules in both engines; priority-aware
/// TSS must reproduce linear's precedence choice exactly.
#[test]
fn priority_tss_equals_linear_on_overlapping() {
    pi_core::for_cases(CASES, 0x12, |rng| {
        let entries = rand_vec(rng, 1, 40, |rng| (rand_masked_key(rng), rng.gen_range(4) as u32));
        let packets = rand_vec(rng, 1, 40, rand_packet);
        let mut tss: TupleSpaceSearch<(u32, u64)> = TupleSpaceSearch::default();
        let mut table = FlowTable::new();
        for (mk, prio) in &entries {
            let id = table.insert(*mk, *prio, Action::Allow);
            // TSS with identical (mask,key) collides; keep the winner the
            // same way OVS would: higher (priority, earlier id) stays.
            match tss.get_mut(mk) {
                Some(existing) => {
                    let candidate = (*prio, u64::MAX - id.0);
                    if candidate > *existing {
                        *existing = candidate;
                    }
                }
                None => {
                    tss.insert(*mk, (*prio, u64::MAX - id.0));
                }
            }
        }
        let linear = LinearClassifier::new(&table);
        for pkt in &packets {
            let tss_best = tss.lookup_best_by(pkt, |v| *v).value.copied();
            let lin_best = linear
                .classify(pkt)
                .map(|r| (r.priority, u64::MAX - r.id.0));
            assert_eq!(tss_best, lin_best, "packet {}", pkt);
        }
    });
}

/// Mask-count law for the classifier: the number of subtables equals
/// the number of distinct masks inserted.
#[test]
fn subtable_count_equals_distinct_masks() {
    pi_core::for_cases(CASES, 0x13, |rng| {
        let entries = rand_vec(rng, 1, 60, rand_masked_key);
        let mut tss = TupleSpaceSearch::default();
        let mut distinct: Vec<FlowMask> = Vec::new();
        for mk in &entries {
            tss.insert(*mk, ());
            if !distinct.contains(mk.mask()) {
                distinct.push(*mk.mask());
            }
        }
        assert_eq!(tss.subtable_count(), distinct.len());
    });
}

/// Removal restores the exact pre-insertion observable state.
#[test]
fn insert_remove_is_identity() {
    pi_core::for_cases(CASES, 0x14, |rng| {
        let base = rand_vec(rng, 0, 20, rand_masked_key);
        let extra = rand_masked_key(rng);
        let probes = rand_vec(rng, 1, 20, rand_packet);
        let mut tss = TupleSpaceSearch::default();
        for (i, mk) in base.iter().enumerate() {
            tss.insert(*mk, i as u64);
        }
        let before: Vec<Option<u64>> =
            probes.iter().map(|p| tss.peek(p).value.copied()).collect();
        let had = tss.get(&extra).copied();
        tss.insert(extra, 999_999);
        match had {
            Some(v) => {
                tss.insert(extra, v);
            }
            None => {
                tss.remove(&extra);
            }
        }
        let after: Vec<Option<u64>> =
            probes.iter().map(|p| tss.peek(p).value.copied()).collect();
        assert_eq!(before, after);
    });
}
