//! Property test: Tuple Space Search agrees with the linear reference
//! classifier (DESIGN.md invariant 2).
//!
//! Two regimes are pinned:
//! * **Non-overlapping entries** (the megaflow invariant): first-match
//!   TSS lookup must equal linear classification.
//! * **Arbitrary overlapping rules**: priority-aware TSS
//!   (`lookup_best_by`) must equal linear classification under OVS
//!   precedence.

use pi_classifier::{Action, FlowTable, LinearClassifier, TupleSpaceSearch};
use pi_core::{Field, FlowKey, FlowMask, MaskedKey};
use proptest::prelude::*;

/// A restricted rule universe that makes accidental matches likely
/// enough to be interesting: ip_src prefixes over four /8 roots plus
/// optional exact tp_dst from a small port set.
fn arb_masked_key() -> impl Strategy<Value = MaskedKey> {
    (
        0u8..4,      // which /8 root
        0u8..=32,    // ip prefix length
        0u8..3,      // port selector: 0 = wildcard
        any::<u32>(), // host bits
    )
        .prop_map(|(root, len, port_sel, host)| {
            let ip = ((10 + root as u32) << 24) | (host & 0x00ff_ffff);
            let mut mask = FlowMask::default();
            if len > 0 {
                mask = mask.with_prefix(Field::IpSrc, len);
            }
            let mut key = FlowKey::tcp(
                std::net::Ipv4Addr::from(ip),
                [192, 168, 0, 1],
                0,
                0,
            );
            if port_sel > 0 {
                mask = mask.with_exact(Field::TpDst);
                key.tp_dst = [80u16, 443][port_sel as usize - 1];
            }
            MaskedKey::new(key, mask)
        })
}

fn arb_packet() -> impl Strategy<Value = FlowKey> {
    (0u8..6, any::<u32>(), proptest::sample::select(vec![80u16, 443, 8080])).prop_map(
        |(root, host, port)| {
            let ip = ((9 + root as u32) << 24) | (host & 0x00ff_ffff);
            FlowKey::tcp(std::net::Ipv4Addr::from(ip), [192, 168, 0, 1], 1234, port)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Non-overlapping regime: build disjoint exact-ish entries, compare
    /// first-match TSS against a table of the same rules.
    #[test]
    fn tss_equals_linear_on_non_overlapping(
        seeds in proptest::collection::vec(arb_masked_key(), 1..40),
        packets in proptest::collection::vec(arb_packet(), 1..40),
    ) {
        // Keep only mutually non-overlapping masked keys (greedy filter).
        let mut chosen: Vec<MaskedKey> = Vec::new();
        for mk in seeds {
            if chosen.iter().all(|c| !c.overlaps(&mk)) {
                chosen.push(mk);
            }
        }
        let mut tss = TupleSpaceSearch::default();
        let mut table = FlowTable::new();
        for (i, mk) in chosen.iter().enumerate() {
            tss.insert(*mk, i);
            table.insert(*mk, 0, if i % 2 == 0 { Action::Allow } else { Action::Deny });
        }
        let linear = LinearClassifier::new(&table);
        for pkt in &packets {
            let tss_hit = tss.peek(pkt).value.copied();
            let lin_hit = linear.classify(pkt).map(|r| r.id.0 as usize);
            // Rule ids equal insertion sequence = our payload indices.
            prop_assert_eq!(tss_hit, lin_hit, "packet {}", pkt);
        }
    }

    /// Overlapping regime: same rules in both engines; priority-aware
    /// TSS must reproduce linear's precedence choice exactly.
    #[test]
    fn priority_tss_equals_linear_on_overlapping(
        entries in proptest::collection::vec((arb_masked_key(), 0u32..4), 1..40),
        packets in proptest::collection::vec(arb_packet(), 1..40),
    ) {
        let mut tss: TupleSpaceSearch<(u32, u64)> = TupleSpaceSearch::default();
        let mut table = FlowTable::new();
        for (mk, prio) in &entries {
            let id = table.insert(*mk, *prio, Action::Allow);
            // TSS with identical (mask,key) collides; keep the winner the
            // same way OVS would: higher (priority, earlier id) stays.
            match tss.get_mut(mk) {
                Some(existing) => {
                    let candidate = (*prio, u64::MAX - id.0);
                    if candidate > *existing {
                        *existing = candidate;
                    }
                }
                None => {
                    tss.insert(*mk, (*prio, u64::MAX - id.0));
                }
            }
        }
        let linear = LinearClassifier::new(&table);
        for pkt in &packets {
            let tss_best = tss.lookup_best_by(pkt, |v| *v).value.copied();
            let lin_best = linear
                .classify(pkt)
                .map(|r| (r.priority, u64::MAX - r.id.0));
            prop_assert_eq!(tss_best, lin_best, "packet {}", pkt);
        }
    }

    /// Mask-count law for the classifier: the number of subtables equals
    /// the number of distinct masks inserted.
    #[test]
    fn subtable_count_equals_distinct_masks(
        entries in proptest::collection::vec(arb_masked_key(), 1..60),
    ) {
        let mut tss = TupleSpaceSearch::default();
        let mut distinct: Vec<FlowMask> = Vec::new();
        for mk in &entries {
            tss.insert(*mk, ());
            if !distinct.contains(mk.mask()) {
                distinct.push(*mk.mask());
            }
        }
        prop_assert_eq!(tss.subtable_count(), distinct.len());
    }

    /// Removal restores the exact pre-insertion observable state.
    #[test]
    fn insert_remove_is_identity(
        base in proptest::collection::vec(arb_masked_key(), 0..20),
        extra in arb_masked_key(),
        probes in proptest::collection::vec(arb_packet(), 1..20),
    ) {
        let mut tss = TupleSpaceSearch::default();
        for (i, mk) in base.iter().enumerate() {
            tss.insert(*mk, i as u64);
        }
        let before: Vec<Option<u64>> =
            probes.iter().map(|p| tss.peek(p).value.copied()).collect();
        let had = tss.get(&extra).copied();
        tss.insert(extra, 999_999);
        match had {
            Some(v) => { tss.insert(extra, v); }
            None => { tss.remove(&extra); }
        }
        let after: Vec<Option<u64>> =
            probes.iter().map(|p| tss.peek(p).value.copied()).collect();
        prop_assert_eq!(before, after);
    }
}
