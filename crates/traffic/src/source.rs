//! The traffic-source abstraction.

use pi_core::{FlowKey, SimTime};

/// One generated packet: a flow key plus its on-wire size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenPacket {
    /// Parsed header tuple (what the switch classifies on).
    pub key: FlowKey,
    /// Frame size in bytes (what throughput is measured in).
    pub bytes: usize,
}

/// A source of packets driven by the simulation clock.
///
/// The simulator calls [`TrafficSource::generate`] once per tick with
/// the half-open interval `[from, to)` and later reports what happened
/// to the emitted packets via [`TrafficSource::feedback`] — the hook
/// loss-responsive sources (TCP-like) use to adapt.
pub trait TrafficSource {
    /// Appends every packet this source emits in `[from, to)` to `out`.
    fn generate(&mut self, from: SimTime, to: SimTime, out: &mut Vec<GenPacket>);

    /// Delivery report for the packets this source emitted during the
    /// last tick: `delivered` reached their destination, `dropped` were
    /// lost (policy drops are not reported here — only capacity loss).
    fn feedback(&mut self, _delivered: u64, _dropped: u64) {}

    /// A short label for reporting.
    fn label(&self) -> &str {
        "source"
    }

    /// The earliest time `t >= from` at which a `generate` call whose
    /// window contains `t` may emit packets **or mutate source state**.
    /// The event-driven engines skip a source's host while every window
    /// before this time is a provable no-op; sources whose `generate`
    /// touches state on every call (rate adaptation, credit accrual)
    /// must keep the conservative default of "always active".
    /// [`SimTime::NEVER`] means the source is finished for good.
    fn next_activity(&self, from: SimTime) -> SimTime {
        from
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null;
    impl TrafficSource for Null {
        fn generate(&mut self, _: SimTime, _: SimTime, _: &mut Vec<GenPacket>) {}
    }

    #[test]
    fn default_hooks_are_noops() {
        let mut n = Null;
        n.feedback(5, 5);
        assert_eq!(n.label(), "source");
        let mut v = Vec::new();
        n.generate(SimTime::ZERO, SimTime::from_secs(1), &mut v);
        assert!(v.is_empty());
    }
}
