//! Background pod-to-pod chatter.
//!
//! Realistic nodes never carry one lone flow; short RPC-ish exchanges
//! arrive continuously, each creating cache state. Arrivals are Poisson,
//! flow lengths geometric, endpoints drawn from a configured pod set —
//! all from a seeded RNG so scenarios are reproducible.

use pi_core::{FlowKey, SimTime, SplitMix64};

use crate::source::{GenPacket, TrafficSource};

/// One live background flow.
#[derive(Debug, Clone)]
struct LiveFlow {
    key: FlowKey,
    packets_left: u32,
    pps: f64,
    credit: f64,
}

/// Poisson flow arrivals between random pod pairs.
#[derive(Debug)]
pub struct PoissonFlowSource {
    /// Candidate (src_ip, dst_ip) pairs in host byte order.
    endpoints: Vec<(u32, u32)>,
    /// Mean new flows per second.
    arrival_rate: f64,
    /// Mean packets per flow (geometric).
    mean_flow_packets: f64,
    /// Per-flow packet rate.
    flow_pps: f64,
    frame_bytes: usize,
    rng: SplitMix64,
    live: Vec<LiveFlow>,
    arrival_credit: f64,
    next_sport: u16,
    label: String,
}

impl PoissonFlowSource {
    /// Creates a background source over the given pod-pair endpoints.
    pub fn new(
        endpoints: Vec<(u32, u32)>,
        arrival_rate: f64,
        mean_flow_packets: f64,
        flow_pps: f64,
        frame_bytes: usize,
        seed: u64,
    ) -> Self {
        assert!(!endpoints.is_empty(), "need at least one endpoint pair");
        PoissonFlowSource {
            endpoints,
            arrival_rate,
            mean_flow_packets,
            flow_pps,
            frame_bytes,
            rng: SplitMix64::new(seed),
            live: Vec::new(),
            arrival_credit: 0.0,
            next_sport: 10_000,
            label: "background".to_string(),
        }
    }

    /// Names the source for reports.
    #[must_use]
    pub fn named(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// Currently live flows (diagnostics).
    pub fn live_flows(&self) -> usize {
        self.live.len()
    }

    fn spawn_flow(&mut self) {
        let (src, dst) = self.endpoints[self.rng.gen_range(self.endpoints.len() as u64) as usize];
        let sport = self.next_sport;
        self.next_sport = self.next_sport.wrapping_add(1).max(10_000);
        // Geometric length with the configured mean, at least 1.
        let u: f64 = self.rng.next_f64();
        let len = (1.0 + (-u.ln()) * (self.mean_flow_packets - 1.0)).round() as u32;
        let key = FlowKey::tcp(
            std::net::Ipv4Addr::from(src),
            std::net::Ipv4Addr::from(dst),
            sport,
            80,
        );
        self.live.push(LiveFlow {
            key,
            packets_left: len.max(1),
            pps: self.flow_pps,
            credit: 0.0,
        });
    }
}

impl TrafficSource for PoissonFlowSource {
    fn generate(&mut self, from: SimTime, to: SimTime, out: &mut Vec<GenPacket>) {
        let dt = (to.saturating_sub(from)).as_nanos() as f64 / 1e9;
        // Flow arrivals: Poisson thinned to per-tick Bernoulli batches.
        self.arrival_credit += self.arrival_rate * dt;
        while self.arrival_credit >= 1.0 {
            self.arrival_credit -= 1.0;
            self.spawn_flow();
        }
        // Emit from live flows.
        let frame = self.frame_bytes;
        for f in self.live.iter_mut() {
            f.credit += f.pps * dt;
            while f.credit >= 1.0 && f.packets_left > 0 {
                f.credit -= 1.0;
                f.packets_left -= 1;
                out.push(GenPacket {
                    key: f.key,
                    bytes: frame,
                });
            }
        }
        self.live.retain(|f| f.packets_left > 0);
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoints() -> Vec<(u32, u32)> {
        (0..8u32)
            .map(|i| (0x0a00_0100 + i, 0x0a00_0200 + i))
            .collect()
    }

    fn total_packets(src: &mut PoissonFlowSource, secs: u64) -> usize {
        let mut out = Vec::new();
        let mut total = 0;
        for ms in 0..secs * 1000 {
            out.clear();
            src.generate(
                SimTime::from_millis(ms),
                SimTime::from_millis(ms + 1),
                &mut out,
            );
            total += out.len();
        }
        total
    }

    #[test]
    fn long_run_volume_matches_expectation() {
        // 10 flows/s × 20 packets ≈ 200 pps expected.
        let mut src = PoissonFlowSource::new(endpoints(), 10.0, 20.0, 100.0, 200, 42);
        let got = total_packets(&mut src, 30);
        let expected = 30.0 * 10.0 * 20.0;
        assert!(
            (got as f64) > 0.7 * expected && (got as f64) < 1.3 * expected,
            "got {got}, expected ≈ {expected}"
        );
    }

    #[test]
    fn determinism_under_same_seed() {
        let mut a = PoissonFlowSource::new(endpoints(), 5.0, 10.0, 50.0, 200, 7);
        let mut b = PoissonFlowSource::new(endpoints(), 5.0, 10.0, 50.0, 200, 7);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for ms in 0..5_000u64 {
            a.generate(
                SimTime::from_millis(ms),
                SimTime::from_millis(ms + 1),
                &mut out_a,
            );
            b.generate(
                SimTime::from_millis(ms),
                SimTime::from_millis(ms + 1),
                &mut out_b,
            );
        }
        assert_eq!(out_a.len(), out_b.len());
        assert!(out_a.iter().zip(&out_b).all(|(x, y)| x.key == y.key));
        // Different seed diverges.
        let mut c = PoissonFlowSource::new(endpoints(), 5.0, 10.0, 50.0, 200, 8);
        let mut out_c = Vec::new();
        for ms in 0..5_000u64 {
            c.generate(
                SimTime::from_millis(ms),
                SimTime::from_millis(ms + 1),
                &mut out_c,
            );
        }
        assert_ne!(
            out_a.iter().map(|p| p.key.tp_src).collect::<Vec<_>>(),
            out_c.iter().map(|p| p.key.tp_src).collect::<Vec<_>>()
        );
    }

    #[test]
    fn flows_use_configured_endpoints() {
        let eps = endpoints();
        let mut src = PoissonFlowSource::new(eps.clone(), 50.0, 5.0, 1000.0, 200, 3);
        let mut out = Vec::new();
        for ms in 0..2_000u64 {
            src.generate(
                SimTime::from_millis(ms),
                SimTime::from_millis(ms + 1),
                &mut out,
            );
        }
        assert!(!out.is_empty());
        for p in &out {
            assert!(eps.contains(&(p.key.ip_src, p.key.ip_dst)));
            assert_eq!(p.key.tp_dst, 80);
            assert_eq!(p.bytes, 200);
        }
    }

    #[test]
    fn flows_terminate() {
        let mut src = PoissonFlowSource::new(endpoints(), 2.0, 3.0, 100.0, 200, 5);
        let mut out = Vec::new();
        for ms in 0..10_000u64 {
            src.generate(
                SimTime::from_millis(ms),
                SimTime::from_millis(ms + 1),
                &mut out,
            );
        }
        // After arrivals stop being generated (rate set to 0), the pool drains.
        src.arrival_rate = 0.0;
        for ms in 10_000..40_000u64 {
            src.generate(
                SimTime::from_millis(ms),
                SimTime::from_millis(ms + 1),
                &mut out,
            );
        }
        assert_eq!(src.live_flows(), 0, "all bounded flows must finish");
    }

    #[test]
    #[should_panic(expected = "endpoint")]
    fn empty_endpoints_panics() {
        PoissonFlowSource::new(vec![], 1.0, 1.0, 1.0, 64, 0);
    }
}
