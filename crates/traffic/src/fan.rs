//! Round-robin fan over a fixed set of flows.
//!
//! Models a service with a stable population of concurrent clients —
//! the workload whose fast-path state a policy-churn flush storm keeps
//! destroying: every flow in the fan owns live cache entries (and,
//! when the service's ACL whitelists clients individually, its own
//! megaflow), so a full-cache invalidation forces one slow-path
//! rebuild *per flow*, not per service.

use pi_core::{FlowKey, SimTime};

use crate::source::{GenPacket, TrafficSource};

/// Constant aggregate-rate traffic cycling round-robin through a fixed
/// key set.
#[derive(Debug, Clone)]
pub struct FanSource {
    keys: Vec<FlowKey>,
    frame_bytes: usize,
    /// Aggregate packets/second across the whole fan.
    pps: f64,
    start: SimTime,
    active_ns: u64,
    emitted: u64,
    cursor: usize,
    label: String,
}

impl FanSource {
    /// A fan emitting `pps` packets/second in aggregate, round-robin
    /// over `keys`, with `frame_bytes` frames.
    pub fn new(keys: Vec<FlowKey>, frame_bytes: usize, pps: f64) -> Self {
        assert!(!keys.is_empty(), "a fan needs at least one flow");
        FanSource {
            keys,
            frame_bytes,
            pps,
            start: SimTime::ZERO,
            active_ns: 0,
            emitted: 0,
            cursor: 0,
            label: "fan".to_string(),
        }
    }

    /// Delays the first packet until `start`.
    #[must_use]
    pub fn starting_at(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }

    /// Names the source for reports.
    #[must_use]
    pub fn named(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// Number of flows in the fan.
    pub fn flow_count(&self) -> usize {
        self.keys.len()
    }

    /// The configured aggregate rate.
    pub fn pps(&self) -> f64 {
        self.pps
    }
}

impl TrafficSource for FanSource {
    fn generate(&mut self, from: SimTime, to: SimTime, out: &mut Vec<GenPacket>) {
        let from = from.max(self.start);
        if from >= to {
            return;
        }
        self.active_ns += (to - from).as_nanos();
        let target = (self.pps * self.active_ns as f64 / 1e9).floor() as u64;
        let n = target.saturating_sub(self.emitted);
        self.emitted = target;
        for _ in 0..n {
            let key = self.keys[self.cursor];
            self.cursor = (self.cursor + 1) % self.keys.len();
            out.push(GenPacket {
                key,
                bytes: self.frame_bytes,
            });
        }
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn next_activity(&self, from: SimTime) -> SimTime {
        from.max(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u8) -> Vec<FlowKey> {
        (0..n)
            .map(|i| FlowKey::tcp([10, 2, 0, i], [10, 1, 0, 10], 40_000 + i as u16, 5201))
            .collect()
    }

    fn drive(s: &mut FanSource, from_ms: u64, to_ms: u64) -> Vec<GenPacket> {
        let mut out = Vec::new();
        for ms in from_ms..to_ms {
            s.generate(
                SimTime::from_millis(ms),
                SimTime::from_millis(ms + 1),
                &mut out,
            );
        }
        out
    }

    #[test]
    fn aggregate_rate_is_exact_and_round_robin_is_fair() {
        let mut s = FanSource::new(keys(16), 400, 4_000.0);
        let out = drive(&mut s, 0, 2_000);
        assert_eq!(out.len(), 8_000, "2 s at 4 kpps aggregate");
        // Every flow gets exactly its fair share.
        let mut per_flow = std::collections::HashMap::new();
        for p in &out {
            *per_flow.entry(p.key.ip_src).or_insert(0u64) += 1;
        }
        assert_eq!(per_flow.len(), 16);
        assert!(per_flow.values().all(|&c| c == 500));
    }

    #[test]
    fn silent_before_start() {
        let mut s = FanSource::new(keys(4), 64, 1_000.0).starting_at(SimTime::from_secs(1));
        assert!(drive(&mut s, 0, 1_000).is_empty());
        assert_eq!(drive(&mut s, 1_000, 2_000).len(), 1_000);
    }

    #[test]
    fn reporting_helpers() {
        let s = FanSource::new(keys(3), 64, 10.0).named("victims");
        assert_eq!(s.label(), "victims");
        assert_eq!(s.flow_count(), 3);
        assert_eq!(s.pps(), 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn empty_fan_panics() {
        FanSource::new(Vec::new(), 64, 1.0);
    }
}
