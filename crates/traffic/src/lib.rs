//! # pi-traffic — workload generation
//!
//! Deterministic, seeded packet sources for the simulator:
//!
//! * [`CbrSource`] — constant-rate packets of one flow (probe traffic,
//!   covert refresh streams).
//! * [`IperfSource`] — the paper's victim: a bulk TCP transfer with an
//!   AIMD congestion response, so sustained loss collapses its rate the
//!   way a real iperf session would (Fig. 3's victim line).
//! * [`PoissonFlowSource`] — background pod-to-pod chatter: flow
//!   arrivals are Poisson, each flow sends a bounded burst. Keeps the
//!   caches honest in scenarios.
//! * [`ChurnSource`] — connection churn: every packet is a brand-new
//!   flow, the workload that keeps a switch's slow path busy (the
//!   victim of the handler-saturation scenarios).
//! * [`FanSource`] — a fixed population of concurrent flows served
//!   round-robin at a constant aggregate rate (the victim of the
//!   policy-churn scenarios: every flush forces a rebuild per flow).
//!
//! Every source implements [`TrafficSource`]: the simulator asks for the
//! packets of each tick interval and feeds delivery/drop counts back.

pub mod cbr;
pub mod churn;
pub mod fan;
pub mod iperf;
pub mod poisson;
pub mod source;

pub use cbr::CbrSource;
pub use churn::ChurnSource;
pub use fan::FanSource;
pub use iperf::IperfSource;
pub use poisson::PoissonFlowSource;
pub use source::{GenPacket, TrafficSource};
