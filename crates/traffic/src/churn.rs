//! Connection-churn source: every packet opens a brand-new flow.
//!
//! Models a service whose clients are short-lived (one request per
//! connection — the unhappy common case for flow caches): each emitted
//! packet carries a fresh `(ip_src, tp_src)` pair, so nothing it sends
//! is ever a microflow hit and — whenever megaflow installs are refused
//! (flow-limit pressure) or not yet landed (the bounded pipeline's
//! miss-to-install window) — every packet is a slow-path upcall. This is
//! the victim workload of the handler-saturation scenarios.

use pi_core::{FlowKey, SimTime};

use crate::source::{GenPacket, TrafficSource};

/// Constant-rate stream of single-packet flows towards one destination.
#[derive(Debug, Clone)]
pub struct ChurnSource {
    /// Destination pod (host order) and service port.
    dst_ip: u32,
    dst_port: u16,
    /// Client address block the unique sources are drawn from.
    src_base: u32,
    frame_bytes: usize,
    pps: f64,
    start: SimTime,
    active_ns: u64,
    emitted: u64,
    counter: u64,
    label: String,
}

/// Ephemeral source ports cycled per client address (IANA-ish range).
const PORTS_PER_CLIENT: u64 = 28_000;

impl ChurnSource {
    /// A churn stream of `pps` new connections/second of `frame_bytes`
    /// frames from the `src_base` block towards `dst_ip:dst_port`.
    pub fn new(src_base: u32, dst_ip: u32, dst_port: u16, frame_bytes: usize, pps: f64) -> Self {
        ChurnSource {
            dst_ip,
            dst_port,
            src_base,
            frame_bytes,
            pps,
            start: SimTime::ZERO,
            active_ns: 0,
            emitted: 0,
            counter: 0,
            label: "churn".to_string(),
        }
    }

    /// Delays the first connection until `start`.
    #[must_use]
    pub fn starting_at(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }

    /// Names the source for reports.
    #[must_use]
    pub fn named(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// The configured connection rate.
    pub fn pps(&self) -> f64 {
        self.pps
    }

    /// The `n`-th connection's flow key (deterministic; exposed so
    /// tests can predict the stream).
    pub fn flow(&self, n: u64) -> FlowKey {
        let src = self.src_base.wrapping_add((n / PORTS_PER_CLIENT) as u32);
        let sport = 1024 + (n % PORTS_PER_CLIENT) as u16;
        FlowKey::tcp(
            src.to_be_bytes(),
            self.dst_ip.to_be_bytes(),
            sport,
            self.dst_port,
        )
    }
}

impl TrafficSource for ChurnSource {
    fn generate(&mut self, from: SimTime, to: SimTime, out: &mut Vec<GenPacket>) {
        let from = from.max(self.start);
        if from >= to {
            return;
        }
        self.active_ns += (to - from).as_nanos();
        let target = (self.pps * self.active_ns as f64 / 1e9).floor() as u64;
        let n = target.saturating_sub(self.emitted);
        self.emitted = target;
        for _ in 0..n {
            let key = self.flow(self.counter);
            self.counter += 1;
            out.push(GenPacket {
                key,
                bytes: self.frame_bytes,
            });
        }
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn next_activity(&self, from: SimTime) -> SimTime {
        from.max(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn drive(s: &mut ChurnSource, from_ms: u64, to_ms: u64) -> Vec<GenPacket> {
        let mut out = Vec::new();
        for ms in from_ms..to_ms {
            s.generate(
                SimTime::from_millis(ms),
                SimTime::from_millis(ms + 1),
                &mut out,
            );
        }
        out
    }

    #[test]
    fn every_packet_is_a_new_flow() {
        let mut s = ChurnSource::new(0x0a00_0a00, 0x0a01_000a, 5201, 64, 5_000.0);
        let out = drive(&mut s, 0, 2_000);
        assert_eq!(out.len(), 10_000, "2 s at 5 kpps");
        let distinct: HashSet<_> = out.iter().map(|p| (p.key.ip_src, p.key.tp_src)).collect();
        assert_eq!(distinct.len(), out.len(), "flows never repeat");
        for p in &out {
            assert_eq!(p.key.ip_dst, 0x0a01_000a);
            assert_eq!(p.key.tp_dst, 5201);
        }
    }

    #[test]
    fn silent_before_start_and_rate_is_exact() {
        let mut s = ChurnSource::new(1, 2, 80, 100, 1_000.0).starting_at(SimTime::from_secs(1));
        assert!(drive(&mut s, 0, 1_000).is_empty());
        let out = drive(&mut s, 1_000, 4_000);
        assert_eq!(out.len(), 3_000);
    }

    #[test]
    fn flow_sequence_is_deterministic_and_rolls_clients() {
        let s = ChurnSource::new(0x0a00_0a00, 2, 80, 64, 1.0);
        assert_eq!(s.flow(0), s.flow(0));
        assert_eq!(s.flow(0).tp_src, 1024);
        // Past the per-client port window, the client address advances.
        let rolled = s.flow(PORTS_PER_CLIENT);
        assert_eq!(rolled.ip_src, 0x0a00_0a01);
        assert_eq!(rolled.tp_src, 1024);
    }
}
