//! The victim workload: a TCP bulk transfer with AIMD rate adaptation.
//!
//! Fig. 3 measures an iperf-like session. We do not simulate full TCP;
//! what matters for reproducing the figure is the *control response*:
//! a loss-free path lets the sender sit at its link-limited rate, while
//! sustained capacity drops (the switch starving under covert load)
//! push the rate down multiplicatively faster than additive recovery
//! can climb back — the collapse shape of the paper's victim line.

use pi_core::{FlowKey, SimTime};

use crate::source::{GenPacket, TrafficSource};

/// AIMD-paced bulk sender.
#[derive(Debug, Clone)]
pub struct IperfSource {
    key: FlowKey,
    frame_bytes: usize,
    /// Link-limited ceiling, packets/second.
    max_pps: f64,
    /// Current sending rate, packets/second.
    rate_pps: f64,
    /// Additive increase per second, as a fraction of `max_pps`.
    increase_per_sec: f64,
    /// Multiplicative decrease factor applied per loss-heavy tick.
    decrease_factor: f64,
    /// Loss fraction above which a tick counts as congested.
    loss_threshold: f64,
    /// Floor so the flow can always probe for recovery.
    min_pps: f64,
    credit: f64,
    label: String,
}

impl IperfSource {
    /// A bulk TCP-like flow capped at `max_bits_per_sec`.
    pub fn new(key: FlowKey, frame_bytes: usize, max_bits_per_sec: f64) -> Self {
        let max_pps = max_bits_per_sec / (frame_bytes as f64 * 8.0);
        IperfSource {
            key,
            frame_bytes,
            max_pps,
            rate_pps: max_pps, // slow-start elided: begin at line rate
            increase_per_sec: 0.10,
            decrease_factor: 0.5,
            loss_threshold: 0.02,
            min_pps: (max_pps / 1000.0).max(1.0),
            credit: 0.0,
            label: "iperf".to_string(),
        }
    }

    /// Names the source for reports.
    #[must_use]
    pub fn named(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// Current sending rate in bits/second.
    pub fn rate_bps(&self) -> f64 {
        self.rate_pps * self.frame_bytes as f64 * 8.0
    }

    /// The configured ceiling in packets/second.
    pub fn max_pps(&self) -> f64 {
        self.max_pps
    }
}

impl TrafficSource for IperfSource {
    fn generate(&mut self, from: SimTime, to: SimTime, out: &mut Vec<GenPacket>) {
        let dt = (to.saturating_sub(from)).as_nanos() as f64 / 1e9;
        // Additive increase happens continuously while sending.
        self.rate_pps =
            (self.rate_pps + self.increase_per_sec * self.max_pps * dt).min(self.max_pps);
        self.credit += self.rate_pps * dt;
        let n = self.credit as u64;
        self.credit -= n as f64;
        for _ in 0..n {
            out.push(GenPacket {
                key: self.key,
                bytes: self.frame_bytes,
            });
        }
    }

    fn feedback(&mut self, delivered: u64, dropped: u64) {
        let total = delivered + dropped;
        if total == 0 {
            return;
        }
        let loss = dropped as f64 / total as f64;
        if loss > self.loss_threshold {
            self.rate_pps = (self.rate_pps * self.decrease_factor).max(self.min_pps);
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 40_000, 5201)
    }

    /// Drives the source for `secs` with a per-tick delivery function.
    fn run(
        src: &mut IperfSource,
        secs: u64,
        mut deliver: impl FnMut(u64, usize) -> usize,
    ) -> Vec<usize> {
        let mut per_sec = Vec::new();
        let mut out = Vec::new();
        for s in 0..secs {
            let mut sent_this_sec = 0;
            for ms in 0..1000u64 {
                out.clear();
                let from = SimTime::from_millis(s * 1000 + ms);
                let to = SimTime::from_millis(s * 1000 + ms + 1);
                src.generate(from, to, &mut out);
                let sent = out.len();
                let ok = deliver(s, sent).min(sent);
                src.feedback(ok as u64, (sent - ok) as u64);
                sent_this_sec += ok;
            }
            per_sec.push(sent_this_sec);
        }
        per_sec
    }

    #[test]
    fn lossless_path_holds_line_rate() {
        let mut src = IperfSource::new(key(), 1500, 1e9);
        let per_sec = run(&mut src, 5, |_, sent| sent);
        for (s, got) in per_sec.iter().enumerate() {
            assert!(
                (*got as f64) > 0.95 * 83_333.0,
                "second {s}: {got} pps below line rate"
            );
        }
    }

    #[test]
    fn sustained_loss_collapses_rate() {
        let mut src = IperfSource::new(key(), 1500, 1e9);
        // From t=2 s, the path can only carry 5% of offered load.
        let per_sec = run(&mut src, 8, |s, sent| if s < 2 { sent } else { sent / 20 });
        let before = per_sec[1] as f64;
        let after = per_sec[7] as f64;
        assert!(
            after < 0.10 * before,
            "rate should collapse: before={before} after={after}"
        );
    }

    #[test]
    fn recovers_after_congestion_clears() {
        let mut src = IperfSource::new(key(), 1500, 1e9);
        // Congestion only between t=2 s and t=4 s.
        let per_sec = run(&mut src, 20, |s, sent| {
            if (2..4).contains(&s) {
                sent / 50
            } else {
                sent
            }
        });
        let collapsed = per_sec[3] as f64;
        let recovered = *per_sec.last().unwrap() as f64;
        assert!(collapsed < 0.2 * 83_333.0, "collapsed={collapsed}");
        assert!(
            recovered > 0.9 * 83_333.0,
            "additive increase should recover: {recovered}"
        );
    }

    #[test]
    fn rate_never_hits_zero() {
        let mut src = IperfSource::new(key(), 1500, 1e9);
        run(&mut src, 10, |_, _| 0usize);
        assert!(src.rate_bps() > 0.0, "floor keeps probing alive");
    }

    #[test]
    fn reporting_helpers() {
        let src = IperfSource::new(key(), 1500, 1e9).named("victim");
        assert_eq!(src.label(), "victim");
        assert!((src.max_pps() - 83_333.3).abs() < 1.0);
        assert!((src.rate_bps() - 1e9).abs() < 1e6);
    }
}
