//! Constant bit-rate source.

use pi_core::{FlowKey, SimTime};

use crate::source::{GenPacket, TrafficSource};

/// Emits one flow's packets at a constant rate, with exact long-run
/// pacing (fractional packets accumulate across ticks).
#[derive(Debug, Clone)]
pub struct CbrSource {
    key: FlowKey,
    frame_bytes: usize,
    pps: f64,
    /// Active time accumulated so far (drift-free pacing: the emission
    /// target is recomputed from absolute elapsed time every tick).
    active_ns: u64,
    emitted: u64,
    /// Emission window; outside it the source is silent.
    start: SimTime,
    stop: SimTime,
    label: String,
}

impl CbrSource {
    /// A source sending `key` at `pps` packets/second of `frame_bytes`
    /// frames, forever.
    pub fn new(key: FlowKey, frame_bytes: usize, pps: f64) -> Self {
        CbrSource {
            key,
            frame_bytes,
            pps,
            active_ns: 0,
            emitted: 0,
            start: SimTime::ZERO,
            stop: SimTime::from_nanos(u64::MAX),
            label: "cbr".to_string(),
        }
    }

    /// A source with a target bandwidth instead of a packet rate.
    pub fn with_bandwidth(key: FlowKey, frame_bytes: usize, bits_per_sec: f64) -> Self {
        let pps = bits_per_sec / (frame_bytes as f64 * 8.0);
        Self::new(key, frame_bytes, pps)
    }

    /// Restricts emission to `[start, stop)`.
    #[must_use]
    pub fn active_between(mut self, start: SimTime, stop: SimTime) -> Self {
        self.start = start;
        self.stop = stop;
        self
    }

    /// Names the source for reports.
    #[must_use]
    pub fn named(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// The configured packet rate.
    pub fn pps(&self) -> f64 {
        self.pps
    }
}

impl TrafficSource for CbrSource {
    fn generate(&mut self, from: SimTime, to: SimTime, out: &mut Vec<GenPacket>) {
        let from = from.max(self.start);
        let to = to.min(self.stop);
        if from >= to {
            return;
        }
        self.active_ns += (to - from).as_nanos();
        let target = (self.pps * self.active_ns as f64 / 1e9).floor() as u64;
        let n = target.saturating_sub(self.emitted);
        self.emitted += n;
        for _ in 0..n {
            out.push(GenPacket {
                key: self.key,
                bytes: self.frame_bytes,
            });
        }
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn next_activity(&self, from: SimTime) -> SimTime {
        if self.start >= self.stop || from >= self.stop {
            SimTime::NEVER
        } else {
            from.max(self.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1000, 5201)
    }

    fn run(src: &mut CbrSource, secs: u64, tick_ms: u64) -> usize {
        let mut total = 0;
        let mut out = Vec::new();
        let ticks = secs * 1000 / tick_ms;
        for i in 0..ticks {
            out.clear();
            let from = SimTime::from_millis(i * tick_ms);
            let to = SimTime::from_millis((i + 1) * tick_ms);
            src.generate(from, to, &mut out);
            total += out.len();
        }
        total
    }

    #[test]
    fn long_run_rate_is_exact() {
        let mut src = CbrSource::new(key(), 1500, 83_333.0);
        let got = run(&mut src, 10, 1);
        assert_eq!(got, 833_330);
    }

    #[test]
    fn fractional_rates_accumulate() {
        // 0.5 pps with 1 ms ticks: one packet every 2 s.
        let mut src = CbrSource::new(key(), 64, 0.5);
        assert_eq!(run(&mut src, 10, 1), 5);
    }

    #[test]
    fn bandwidth_constructor_matches_pps() {
        let src = CbrSource::with_bandwidth(key(), 1500, 1e9);
        assert!((src.pps() - 83_333.3).abs() < 1.0);
        let covert = CbrSource::with_bandwidth(key(), 64, 2e6);
        assert!((covert.pps() - 3906.25).abs() < 0.01);
    }

    #[test]
    fn window_bounds_emission() {
        let mut src = CbrSource::new(key(), 64, 1000.0)
            .active_between(SimTime::from_secs(2), SimTime::from_secs(3));
        let mut out = Vec::new();
        src.generate(SimTime::ZERO, SimTime::from_secs(1), &mut out);
        assert!(out.is_empty(), "before start");
        src.generate(SimTime::from_secs(2), SimTime::from_secs(3), &mut out);
        assert_eq!(out.len(), 1000, "inside window");
        out.clear();
        src.generate(SimTime::from_secs(5), SimTime::from_secs(6), &mut out);
        assert!(out.is_empty(), "after stop");
    }

    #[test]
    fn packets_carry_key_and_size() {
        let mut src = CbrSource::new(key(), 777, 10.0).named("probe");
        let mut out = Vec::new();
        src.generate(SimTime::ZERO, SimTime::from_secs(1), &mut out);
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|p| p.bytes == 777 && p.key == key()));
        assert_eq!(src.label(), "probe");
    }
}
